package netsim

import (
	"fmt"

	"dsnet/internal/core"
	"dsnet/internal/graph"
	"dsnet/internal/routing"
)

// Candidate is one (neighbor switch, VC) option offered by a routing
// function for the next hop of a packet.
type Candidate struct {
	Next   int32 // next switch
	VC     int8  // virtual channel to acquire at the next switch's input
	Escape bool  // true if this is the deadlock-free escape option
	// Edge pins the hop to a specific physical edge index, for topologies
	// with parallel links whose roles differ (DSN-E's dedicated Up and
	// Extra links). Zero value EdgeAny lets the simulator pick any edge
	// to Next.
	Edge int32
	// NewState becomes the packet's RtState if this candidate is taken.
	// Routers use it to carry per-packet routing state across hops: the
	// up*/down* descent latch, the DOR dateline bit, and so on.
	NewState uint8
	// Detour marks a candidate that exists only because of fabric faults:
	// a longer-than-fault-free adaptive hop or a ring-only fallback after
	// a dead shortcut. The simulator counts packets that take at least one
	// Detour grant in Result.Rerouted.
	Detour bool
}

// EdgeAny leaves the physical edge choice to the simulator.
const EdgeAny int32 = 0

// pinnedEdge decodes the Edge field: candidates store edgeIndex+1 so the
// zero value means "any".
func (c Candidate) pinnedEdge() int32 { return c.Edge - 1 }

// PinEdge returns the Candidate restricted to one physical edge.
func (c Candidate) PinEdge(edge int) Candidate {
	c.Edge = int32(edge) + 1
	return c
}

// PacketState is the routing-relevant state of an in-flight packet.
type PacketState struct {
	SrcSw   int32 // switch the packet was injected at
	DstSw   int32 // switch of the destination host
	Step    int32 // switch-to-switch hops taken so far
	PktID   int64 // unique per packet; randomized routers derandomize on it
	RtState uint8 // router-specific state, updated from Candidate.NewState
}

// descended interprets RtState for the up*/down*-based routers.
func (st PacketState) descended() bool { return st.RtState&1 != 0 }

func descState(d bool) uint8 {
	if d {
		return 1
	}
	return 0
}

// Router supplies next-hop candidates for packets. Implementations must
// be deterministic functions of the packet state and current switch.
type Router interface {
	// Candidates appends the options for the packet at sw and returns the
	// extended slice. Adaptive options come first, escape options last;
	// the simulator prefers adaptive options with free buffers and falls
	// back to the escape.
	Candidates(st PacketState, sw int, buf []Candidate) []Candidate
}

// DuatoUpDown is the paper's simulated routing: fully adaptive minimal
// routing on VCs 1..VCs-1 with a deterministic up*/down* escape path on
// VC 0 (Silla & Duato [24]). Deadlock freedom follows from Duato's
// theory: the escape network's CDG is acyclic, and a blocked packet can
// always wait for the escape channel.
type DuatoUpDown struct {
	g   *graph.Graph
	dt  *routing.DistanceTable
	ud  *routing.UpDown
	vcs int

	// Fault state (UpdateFaults). dt0/ud0 are the pristine fault-free
	// tables, kept so repairs can restore them without a rebuild and so
	// Candidates can mark hops that are longer than the fault-free
	// distance as detours.
	dt0      *routing.DistanceTable
	ud0      *routing.UpDown
	edgeDead []bool
	swDead   []bool
	faulted  bool
}

// NewDuatoUpDown builds the routing function for graph g with the given
// number of VCs (VC 0 is the escape channel).
func NewDuatoUpDown(g *graph.Graph, vcs int) (*DuatoUpDown, error) {
	if vcs < 2 {
		return nil, fmt.Errorf("netsim: adaptive routing needs >= 2 VCs, got %d", vcs)
	}
	ud, err := routing.NewUpDown(g, 0)
	if err != nil {
		return nil, err
	}
	dt := routing.NewDistanceTable(g)
	return &DuatoUpDown{g: g, dt: dt, ud: ud, vcs: vcs, dt0: dt, ud0: ud}, nil
}

// UpdateFaults implements FaultAware: distances and the up*/down* escape
// tree are rebuilt on the surviving subgraph, rooted at the lowest-ID
// live switch. Pairs separated by the faults get no candidates at all,
// which the simulator's timeout/retry transport turns into drops rather
// than deadlock.
func (r *DuatoUpDown) UpdateFaults(edgeDead, swDead []bool) {
	r.edgeDead = append(r.edgeDead[:0], edgeDead...)
	r.swDead = append(r.swDead[:0], swDead...)
	r.faulted = false
	for _, d := range r.edgeDead {
		if d {
			r.faulted = true
		}
	}
	for _, d := range r.swDead {
		if d {
			r.faulted = true
		}
	}
	if !r.faulted { // everything repaired: restore the pristine tables
		r.dt, r.ud = r.dt0, r.ud0
		return
	}
	alive := r.g.Subgraph(func(e int) bool {
		if r.edgeDead[e] {
			return false
		}
		ed := r.g.Edge(e)
		return !r.swDead[ed.U] && !r.swDead[ed.V]
	})
	root := 0
	for root < len(r.swDead)-1 && r.swDead[root] {
		root++
	}
	r.dt = routing.NewDistanceTable(alive)
	if ud, err := routing.NewUpDownPartial(alive, root); err == nil {
		r.ud = ud
	}
}

// Candidates implements Router.
func (r *DuatoUpDown) Candidates(st PacketState, sw int, buf []Candidate) []Candidate {
	dst := int(st.DstSw)
	if sw == dst {
		return buf
	}
	du := r.dt.D(sw, dst)
	if du == graph.Unreachable {
		return buf // faults cut every path; transport times the packet out
	}
	// A surviving distance longer than the fault-free one means every
	// remaining minimal hop is a fault detour.
	detour := r.faulted && du > r.dt0.D(sw, dst)
	for _, h := range r.g.Neighbors(sw) {
		if r.faulted && (r.edgeDead[h.Edge] || r.swDead[h.To]) {
			continue
		}
		if r.dt.D(int(h.To), dst) == du-1 {
			for vc := 1; vc < r.vcs; vc++ {
				// Taking an adaptive hop restarts the escape path, so the
				// descent latch clears.
				buf = append(buf, Candidate{Next: h.To, VC: int8(vc), Detour: detour})
			}
		}
	}
	next, down := r.ud.NextHop(sw, dst, st.descended())
	if next >= 0 && !(r.faulted && r.swDead[next]) {
		buf = append(buf, Candidate{
			Next: int32(next), VC: 0, Escape: true, Detour: detour,
			NewState: descState(st.descended() || down),
		})
	}
	return buf
}

// UpDownOnly routes every packet deterministically along its up*/down*
// path, spreading packets across all VCs of that one output. This is the
// pure topology-agnostic deterministic scheme the paper contrasts with
// its custom routing when discussing traffic balance.
type UpDownOnly struct {
	ud  *routing.UpDown
	vcs int
}

// NewUpDownOnly builds the deterministic up*/down* router.
func NewUpDownOnly(g *graph.Graph, vcs int) (*UpDownOnly, error) {
	if vcs < 1 {
		return nil, fmt.Errorf("netsim: need >= 1 VC, got %d", vcs)
	}
	ud, err := routing.NewUpDown(g, 0)
	if err != nil {
		return nil, err
	}
	return &UpDownOnly{ud: ud, vcs: vcs}, nil
}

// HopBound implements HopBounder: deterministic up*/down* routes never
// exceed the orientation's routing diameter. The bound holds only while
// the fabric is fault-free — UpDownOnly is not FaultAware, so monitors
// should not arm it for runs with a FaultPlan.
func (r *UpDownOnly) HopBound() int { return r.ud.MaxHops() }

// Candidates implements Router.
func (r *UpDownOnly) Candidates(st PacketState, sw int, buf []Candidate) []Candidate {
	dst := int(st.DstSw)
	if sw == dst {
		return buf
	}
	next, down := r.ud.NextHop(sw, dst, st.descended())
	if next < 0 {
		return buf
	}
	for vc := 0; vc < r.vcs; vc++ {
		buf = append(buf, Candidate{
			Next: int32(next), VC: int8(vc), Escape: true,
			NewState: descState(st.descended() || down),
		})
	}
	return buf
}

// DSNSourceRouted drives the simulator with the paper's custom DSN
// routing (the Section VII "initial work" on custom-routing simulations):
// every packet follows the deterministic three-phase route computed at
// injection time, and the Section V.A channel classes are mapped onto
// virtual channels so that the simulated channel sequences match the
// deadlock-free CDG verified in internal/routing:
//
//	VC 0: Up (PRE-WORK), Succ + Shortcut (MAIN)
//	VC 1: Pred, FinishSucc (FINISH outside the Extra window)
//	VC 2: ExtraPred, ExtraSucc (FINISH inside the window)
//
// The three groups are phase-ordered (PRE-WORK < MAIN < FINISH), and
// within VC 0 the pred-direction Up hops cannot mingle with succ-direction
// MAIN hops of another packet into a cycle because Up links never leave a
// super node; deadlock freedom is checked empirically by the package
// tests via the CDG of the exact (link, VC) sequences.
type DSNSourceRouted struct {
	d      *core.DSN
	routes [][]core.Hop // [src*n+dst]
	// pins holds, aligned with routes, the physical edge each hop rides
	// (+1, 0 = any): for DSN-E the Up and Extra classes must use their
	// dedicated links rather than the parallel ring wire.
	pins [][]int32

	// Fault state (UpdateFaults). When the precomputed route's next hop
	// dies under a packet, the packet abandons the route and re-sources
	// onto a ring-only detour toward its destination (RtState bit 0),
	// walking whichever direction is shorter and reversing if it hits a
	// cut (bit 1). Detours ride the FINISH-phase channel classes; they
	// are best-effort — a pathological fault set can cycle them, and the
	// simulator's timeout/retry transport is the liveness backstop.
	edgeDead []bool
	swDead   []bool
	faulted  bool
}

// RtState bits for fault detours.
const (
	dsnDetour uint8 = 1 << 0 // packet abandoned its precomputed route
	dsnCCW    uint8 = 1 << 1 // detour walks counterclockwise (pred links)
)

// UpdateFaults implements FaultAware.
func (r *DSNSourceRouted) UpdateFaults(edgeDead, swDead []bool) {
	r.edgeDead = append(r.edgeDead[:0], edgeDead...)
	r.swDead = append(r.swDead[:0], swDead...)
	r.faulted = false
	for _, d := range r.edgeDead {
		if d {
			r.faulted = true
		}
	}
	for _, d := range r.swDead {
		if d {
			r.faulted = true
		}
	}
}

// NewDSNSourceRouted precomputes all-pairs routes with the DSN custom
// routing algorithm. It requires a deadlock-free variant (DSN-E or DSN-V)
// so the channel classes are meaningful.
func NewDSNSourceRouted(d *core.DSN) (*DSNSourceRouted, error) {
	if d.Variant != core.VariantE && d.Variant != core.VariantV {
		return nil, fmt.Errorf("netsim: source-routed DSN needs variant E or V, got %v", d.Variant)
	}
	return newDSNSourceRouted(d)
}

// NewDSNSourceRoutedUnsafe builds the custom routing for the BASIC DSN
// variant, whose channel classes share ring channels between phases and
// whose CDG provably contains a cycle (see internal/routing's
// TestBasicDSNRoutingHasCDGCycle). It exists to demonstrate empirically
// that the Section V.A channels are necessary: under load the simulation
// genuinely deadlocks and the run watchdog trips.
func NewDSNSourceRoutedUnsafe(d *core.DSN) (*DSNSourceRouted, error) {
	return newDSNSourceRouted(d)
}

func newDSNSourceRouted(d *core.DSN) (*DSNSourceRouted, error) {
	n := d.N
	r := &DSNSourceRouted{
		d:      d,
		routes: make([][]core.Hop, n*n),
		pins:   make([][]int32, n*n),
	}
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if s == t {
				continue
			}
			route, err := d.Route(s, t)
			if err != nil {
				return nil, err
			}
			pins := make([]int32, len(route.Hops))
			for i, h := range route.Hops {
				if _, err := ClassVC(h.Class); err != nil {
					return nil, err
				}
				if d.Variant == core.VariantE {
					if e, ok := physicalEdgeFor(d, h); ok {
						pins[i] = int32(e) + 1
					}
				}
			}
			r.routes[s*n+t] = route.Hops
			r.pins[s*n+t] = pins
		}
	}
	return r, nil
}

// physicalEdgeFor returns the dedicated DSN-E edge a hop's class demands:
// Up hops ride KindUp links, Extra hops ride KindExtra links. Other
// classes keep the default edge choice.
func physicalEdgeFor(d *core.DSN, h core.Hop) (int, bool) {
	var want graph.EdgeKind
	switch h.Class {
	case core.ClassUp:
		want = graph.KindUp
	case core.ClassExtraPred, core.ClassExtraSucc:
		want = graph.KindExtra
	default:
		return 0, false
	}
	for _, half := range d.Graph().Neighbors(int(h.From)) {
		if half.To == h.To && d.Graph().Edge(int(half.Edge)).Kind == want {
			return int(half.Edge), true
		}
	}
	return 0, false
}

// ClassVC maps a Section V.A channel class to its virtual channel in the
// simulator's 4-VC budget (one VC is left spare).
func ClassVC(c core.LinkClass) (int8, error) {
	switch c {
	case core.ClassUp, core.ClassSucc, core.ClassShortcut, core.ClassShort:
		return 0, nil
	case core.ClassPred, core.ClassFinishSucc:
		return 1, nil
	case core.ClassExtraPred, core.ClassExtraSucc:
		return 2, nil
	default:
		return 0, fmt.Errorf("netsim: unmapped link class %v", c)
	}
}

// HopBound implements HopBounder with Theorem 1(c)'s routing-diameter
// bound 3p+r: no precomputed custom route is longer, so a packet at or
// past the bound that is still on its route (not a fault detour —
// detoured packets set Rerouted and are exempt from TTL monitoring)
// witnesses a routing bug. The simulator's hop-ttl monitor uses this as
// the per-packet TTL when the chaos engine arms it.
func (r *DSNSourceRouted) HopBound() int { return r.d.RoutingDiameterBound() }

// Candidates implements Router. The custom routing is deterministic, so
// exactly one candidate is returned, marked Escape so that a blocked
// packet simply waits for it. Under faults the single candidate may
// instead be the next hop of a ring-only detour (see UpdateFaults).
func (r *DSNSourceRouted) Candidates(st PacketState, sw int, buf []Candidate) []Candidate {
	if int32(sw) == st.DstSw {
		return buf
	}
	if st.RtState&dsnDetour != 0 {
		return r.detourCandidates(st, sw, buf)
	}
	idx := int(st.SrcSw)*r.d.N + int(st.DstSw)
	route := r.routes[idx]
	if int(st.Step) >= len(route) {
		return buf
	}
	h := route[st.Step]
	if int(h.From) != sw {
		// Desync would indicate a simulator bug; offer nothing so the
		// test harness notices the stall.
		return buf
	}
	vc, err := ClassVC(h.Class)
	if err != nil {
		return buf
	}
	pin := r.pins[idx][st.Step]
	if r.faulted {
		if r.swDead[st.DstSw] {
			return buf // destination gone; transport times the packet out
		}
		alive, ok := r.usableEdge(sw, int(h.To), pin)
		if !ok {
			// The planned hop is dead under us: re-source onto the ring,
			// preferring the direction with the shorter surviving walk.
			ns := st.RtState | dsnDetour
			if 2*r.d.ClockwiseDist(sw, int(st.DstSw)) > r.d.N {
				ns |= dsnCCW
			}
			st.RtState = ns
			return r.detourCandidates(st, sw, buf)
		}
		pin = alive
	}
	return append(buf, Candidate{Next: h.To, VC: vc, Escape: true, Edge: pin, NewState: st.RtState})
}

// detourCandidates offers the next ring hop of a fault detour. If the
// preferred ring direction is cut at this switch, the packet reverses
// once; if both directions are dead here it gets nothing and drains via
// the transport timeout.
func (r *DSNSourceRouted) detourCandidates(st PacketState, sw int, buf []Candidate) []Candidate {
	for try := 0; try < 2; try++ {
		h := r.d.DetourHop(sw, st.RtState&dsnCCW == 0)
		if vc, err := ClassVC(h.Class); err == nil {
			if edge, ok := r.usableEdge(sw, int(h.To), 0); ok {
				return append(buf, Candidate{
					Next: h.To, VC: vc, Escape: true, Detour: true,
					Edge: edge, NewState: st.RtState,
				})
			}
		}
		st.RtState ^= dsnCCW // this ring direction is cut here; reverse
	}
	return buf
}

// usableEdge resolves the physical edge a fault-tolerant hop rides. A
// pinned dedicated link (DSN-E Up/Extra) that died makes the hop
// unusable — substituting the parallel ring wire would put the class on
// a channel outside the verified deadlock-free CDG. An unpinned hop may
// use any surviving parallel wire to the neighbor.
func (r *DSNSourceRouted) usableEdge(sw, to int, pin int32) (int32, bool) {
	if !r.faulted {
		return pin, true
	}
	if r.swDead[to] {
		return 0, false
	}
	if pin > 0 {
		if r.edgeDead[pin-1] {
			return 0, false
		}
		return pin, true
	}
	for _, h := range r.d.Graph().Neighbors(sw) {
		if int(h.To) == to && !r.edgeDead[h.Edge] {
			return h.Edge + 1, true
		}
	}
	return 0, false
}
