package netsim

import (
	"fmt"

	"dsnet/internal/core"
	"dsnet/internal/graph"
	"dsnet/internal/routing"
)

// Candidate is one (neighbor switch, VC) option offered by a routing
// function for the next hop of a packet.
type Candidate struct {
	Next   int32 // next switch
	VC     int8  // virtual channel to acquire at the next switch's input
	Escape bool  // true if this is the deadlock-free escape option
	// Edge pins the hop to a specific physical edge index, for topologies
	// with parallel links whose roles differ (DSN-E's dedicated Up and
	// Extra links). Zero value EdgeAny lets the simulator pick any edge
	// to Next.
	Edge int32
	// NewState becomes the packet's RtState if this candidate is taken.
	// Routers use it to carry per-packet routing state across hops: the
	// up*/down* descent latch, the DOR dateline bit, and so on.
	NewState uint8
}

// EdgeAny leaves the physical edge choice to the simulator.
const EdgeAny int32 = 0

// pinnedEdge decodes the Edge field: candidates store edgeIndex+1 so the
// zero value means "any".
func (c Candidate) pinnedEdge() int32 { return c.Edge - 1 }

// PinEdge returns the Candidate restricted to one physical edge.
func (c Candidate) PinEdge(edge int) Candidate {
	c.Edge = int32(edge) + 1
	return c
}

// PacketState is the routing-relevant state of an in-flight packet.
type PacketState struct {
	SrcSw   int32 // switch the packet was injected at
	DstSw   int32 // switch of the destination host
	Step    int32 // switch-to-switch hops taken so far
	PktID   int64 // unique per packet; randomized routers derandomize on it
	RtState uint8 // router-specific state, updated from Candidate.NewState
}

// descended interprets RtState for the up*/down*-based routers.
func (st PacketState) descended() bool { return st.RtState&1 != 0 }

func descState(d bool) uint8 {
	if d {
		return 1
	}
	return 0
}

// Router supplies next-hop candidates for packets. Implementations must
// be deterministic functions of the packet state and current switch.
type Router interface {
	// Candidates appends the options for the packet at sw and returns the
	// extended slice. Adaptive options come first, escape options last;
	// the simulator prefers adaptive options with free buffers and falls
	// back to the escape.
	Candidates(st PacketState, sw int, buf []Candidate) []Candidate
}

// DuatoUpDown is the paper's simulated routing: fully adaptive minimal
// routing on VCs 1..VCs-1 with a deterministic up*/down* escape path on
// VC 0 (Silla & Duato [24]). Deadlock freedom follows from Duato's
// theory: the escape network's CDG is acyclic, and a blocked packet can
// always wait for the escape channel.
type DuatoUpDown struct {
	g   *graph.Graph
	dt  *routing.DistanceTable
	ud  *routing.UpDown
	vcs int
}

// NewDuatoUpDown builds the routing function for graph g with the given
// number of VCs (VC 0 is the escape channel).
func NewDuatoUpDown(g *graph.Graph, vcs int) (*DuatoUpDown, error) {
	if vcs < 2 {
		return nil, fmt.Errorf("netsim: adaptive routing needs >= 2 VCs, got %d", vcs)
	}
	ud, err := routing.NewUpDown(g, 0)
	if err != nil {
		return nil, err
	}
	return &DuatoUpDown{g: g, dt: routing.NewDistanceTable(g), ud: ud, vcs: vcs}, nil
}

// Candidates implements Router.
func (r *DuatoUpDown) Candidates(st PacketState, sw int, buf []Candidate) []Candidate {
	dst := int(st.DstSw)
	if sw == dst {
		return buf
	}
	du := r.dt.D(sw, dst)
	for _, h := range r.g.Neighbors(sw) {
		if r.dt.D(int(h.To), dst) == du-1 {
			for vc := 1; vc < r.vcs; vc++ {
				// Taking an adaptive hop restarts the escape path, so the
				// descent latch clears.
				buf = append(buf, Candidate{Next: h.To, VC: int8(vc)})
			}
		}
	}
	next, down := r.ud.NextHop(sw, dst, st.descended())
	if next >= 0 {
		buf = append(buf, Candidate{
			Next: int32(next), VC: 0, Escape: true,
			NewState: descState(st.descended() || down),
		})
	}
	return buf
}

// UpDownOnly routes every packet deterministically along its up*/down*
// path, spreading packets across all VCs of that one output. This is the
// pure topology-agnostic deterministic scheme the paper contrasts with
// its custom routing when discussing traffic balance.
type UpDownOnly struct {
	ud  *routing.UpDown
	vcs int
}

// NewUpDownOnly builds the deterministic up*/down* router.
func NewUpDownOnly(g *graph.Graph, vcs int) (*UpDownOnly, error) {
	if vcs < 1 {
		return nil, fmt.Errorf("netsim: need >= 1 VC, got %d", vcs)
	}
	ud, err := routing.NewUpDown(g, 0)
	if err != nil {
		return nil, err
	}
	return &UpDownOnly{ud: ud, vcs: vcs}, nil
}

// Candidates implements Router.
func (r *UpDownOnly) Candidates(st PacketState, sw int, buf []Candidate) []Candidate {
	dst := int(st.DstSw)
	if sw == dst {
		return buf
	}
	next, down := r.ud.NextHop(sw, dst, st.descended())
	if next < 0 {
		return buf
	}
	for vc := 0; vc < r.vcs; vc++ {
		buf = append(buf, Candidate{
			Next: int32(next), VC: int8(vc), Escape: true,
			NewState: descState(st.descended() || down),
		})
	}
	return buf
}

// DSNSourceRouted drives the simulator with the paper's custom DSN
// routing (the Section VII "initial work" on custom-routing simulations):
// every packet follows the deterministic three-phase route computed at
// injection time, and the Section V.A channel classes are mapped onto
// virtual channels so that the simulated channel sequences match the
// deadlock-free CDG verified in internal/routing:
//
//	VC 0: Up (PRE-WORK), Succ + Shortcut (MAIN)
//	VC 1: Pred, FinishSucc (FINISH outside the Extra window)
//	VC 2: ExtraPred, ExtraSucc (FINISH inside the window)
//
// The three groups are phase-ordered (PRE-WORK < MAIN < FINISH), and
// within VC 0 the pred-direction Up hops cannot mingle with succ-direction
// MAIN hops of another packet into a cycle because Up links never leave a
// super node; deadlock freedom is checked empirically by the package
// tests via the CDG of the exact (link, VC) sequences.
type DSNSourceRouted struct {
	d      *core.DSN
	routes [][]core.Hop // [src*n+dst]
	// pins holds, aligned with routes, the physical edge each hop rides
	// (+1, 0 = any): for DSN-E the Up and Extra classes must use their
	// dedicated links rather than the parallel ring wire.
	pins [][]int32
}

// NewDSNSourceRouted precomputes all-pairs routes with the DSN custom
// routing algorithm. It requires a deadlock-free variant (DSN-E or DSN-V)
// so the channel classes are meaningful.
func NewDSNSourceRouted(d *core.DSN) (*DSNSourceRouted, error) {
	if d.Variant != core.VariantE && d.Variant != core.VariantV {
		return nil, fmt.Errorf("netsim: source-routed DSN needs variant E or V, got %v", d.Variant)
	}
	return newDSNSourceRouted(d)
}

// NewDSNSourceRoutedUnsafe builds the custom routing for the BASIC DSN
// variant, whose channel classes share ring channels between phases and
// whose CDG provably contains a cycle (see internal/routing's
// TestBasicDSNRoutingHasCDGCycle). It exists to demonstrate empirically
// that the Section V.A channels are necessary: under load the simulation
// genuinely deadlocks and the run watchdog trips.
func NewDSNSourceRoutedUnsafe(d *core.DSN) (*DSNSourceRouted, error) {
	return newDSNSourceRouted(d)
}

func newDSNSourceRouted(d *core.DSN) (*DSNSourceRouted, error) {
	n := d.N
	r := &DSNSourceRouted{
		d:      d,
		routes: make([][]core.Hop, n*n),
		pins:   make([][]int32, n*n),
	}
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if s == t {
				continue
			}
			route, err := d.Route(s, t)
			if err != nil {
				return nil, err
			}
			pins := make([]int32, len(route.Hops))
			for i, h := range route.Hops {
				if _, err := ClassVC(h.Class); err != nil {
					return nil, err
				}
				if d.Variant == core.VariantE {
					if e, ok := physicalEdgeFor(d, h); ok {
						pins[i] = int32(e) + 1
					}
				}
			}
			r.routes[s*n+t] = route.Hops
			r.pins[s*n+t] = pins
		}
	}
	return r, nil
}

// physicalEdgeFor returns the dedicated DSN-E edge a hop's class demands:
// Up hops ride KindUp links, Extra hops ride KindExtra links. Other
// classes keep the default edge choice.
func physicalEdgeFor(d *core.DSN, h core.Hop) (int, bool) {
	var want graph.EdgeKind
	switch h.Class {
	case core.ClassUp:
		want = graph.KindUp
	case core.ClassExtraPred, core.ClassExtraSucc:
		want = graph.KindExtra
	default:
		return 0, false
	}
	for _, half := range d.Graph().Neighbors(int(h.From)) {
		if half.To == h.To && d.Graph().Edge(int(half.Edge)).Kind == want {
			return int(half.Edge), true
		}
	}
	return 0, false
}

// ClassVC maps a Section V.A channel class to its virtual channel in the
// simulator's 4-VC budget (one VC is left spare).
func ClassVC(c core.LinkClass) (int8, error) {
	switch c {
	case core.ClassUp, core.ClassSucc, core.ClassShortcut, core.ClassShort:
		return 0, nil
	case core.ClassPred, core.ClassFinishSucc:
		return 1, nil
	case core.ClassExtraPred, core.ClassExtraSucc:
		return 2, nil
	default:
		return 0, fmt.Errorf("netsim: unmapped link class %v", c)
	}
}

// Candidates implements Router. The custom routing is deterministic, so
// exactly one candidate is returned, marked Escape so that a blocked
// packet simply waits for it.
func (r *DSNSourceRouted) Candidates(st PacketState, sw int, buf []Candidate) []Candidate {
	if int32(sw) == st.DstSw {
		return buf
	}
	idx := int(st.SrcSw)*r.d.N + int(st.DstSw)
	route := r.routes[idx]
	if int(st.Step) >= len(route) {
		return buf
	}
	h := route[st.Step]
	if int(h.From) != sw {
		// Desync would indicate a simulator bug; offer nothing so the
		// test harness notices the stall.
		return buf
	}
	vc, err := ClassVC(h.Class)
	if err != nil {
		return buf
	}
	return append(buf, Candidate{Next: h.To, VC: vc, Escape: true, Edge: r.pins[idx][st.Step]})
}
