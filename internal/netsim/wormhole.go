package netsim

import (
	"fmt"
	"math/rand/v2"

	"dsnet/internal/graph"
	"dsnet/internal/recovery"
	"dsnet/internal/traffic"
)

// WormSim is the wormhole-switching counterpart of Sim: virtual-channel
// flow control with flit-granular credits and buffers that may be smaller
// than a packet, so a blocked packet stalls in place as a "worm"
// stretched across several switches, each holding one VC exclusively
// until the tail passes. Section V.A of the paper discusses deadlock
// avoidance for exactly this regime ("wormhole or cut-through routing
// modes").
//
// The router pipeline model matches Sim: the header is routable
// PipelineCycles after arriving, every flit takes 1 cycle on a link plus
// LinkDelayCycles of wire time, and each input/output port moves at most
// one flit per cycle.
type WormSim struct {
	cfg     Config
	g       *graph.Graph
	rt      Router
	pattern traffic.Pattern
	rate    float64
	rng     *rand.Rand

	nSw   int
	hosts int
	nChan int

	chanDst   []int32
	inChans   [][]int32 // through channels first, injection channels last
	thruCount []int

	// Per (channel, VC) slot state.
	slotPkt    []*wpacket
	buffered   []int32
	readyAt    []int64 // header arrival + pipeline; MaxInt64 until header
	routed     []bool
	isEject    []bool
	outSlot    []int32 // allocated downstream slot (when routed, !isEject)
	outChan    []int32
	forwarded  []int32
	credits    []int32 // buffer space at the slot, as seen by its sender
	slotOfChan func(c int32, vc int8) int32

	// Per-cycle usage stamps.
	inUsed  []int64 // per channel
	outUsed []int64 // per channel
	ejUsed  []int64 // per host

	// Host injection state.
	hostQ        [][]*wpacket
	hostCur      []*wpacket
	hostSlot     []int32 // allocated injection slot
	hostInjected []int32

	rrIn     []int
	orderBuf []int32

	wheel     *timingWheel[wwheelEv]
	linkDelay []int64 // per-channel wire delay in cycles

	// Fault state (SetFaultPlan); see that method for the wormhole
	// engine's masking-only semantics.
	plan         *FaultPlan
	planIdx      int
	edgeDead     []bool
	swDead       []bool
	chanDead     []bool
	faultActive  bool
	reroutedPkts int64

	// rep holds the closed-loop replay state (SetReplay); nil in open-loop
	// runs, whose behavior is untouched.
	rep *replayState

	// flows holds per-flow reorder/path-spread accounting, non-nil only
	// when the router implements PathIndexer (multipath source routing).
	flows *flowAcct

	// rec holds the armed deadlock-recovery machinery (SetRecovery); nil
	// means disarmed. inNetwork counts worms between host-NIC claim and
	// delivery/abort (the drain-emptiness condition); lostTotal counts
	// worms dropped past the abort budget; flitsInjected/flitsEjected are
	// the flit-conservation books; chainMark/chainBuf are teardown
	// scratch.
	rec           *recState
	inNetwork     int64
	lostTotal     int64
	flitsInjected int64
	flitsEjected  int64
	chainMark     []bool
	chainBuf      []int32

	// mon holds the armed runtime invariant monitors (SetMonitors);
	// violation records the first trip. maxHOLWait tracks the largest
	// routing wait of a headered worm (Result.MaxHOLWaitCycles).
	mon        Monitors
	violation  *MonitorViolation
	maxHOLWait int64

	now          int64
	nextID       int64
	inFlight     int64
	lastProgress int64

	genMeasured    int64
	delMeasured    int64
	latencySum     int64
	hopsSum        int64
	latencies      []int64
	flitsInWindow  int64
	deliveredTotal int64
	generatedTotal int64
	chanFlits      []int64

	scratch []Candidate
}

type wpacket struct {
	id       int64
	dstHost  int32
	st       PacketState
	genCycle int64
	measured bool
	// escLocked implements the conservative Duato rule for wormhole: once
	// a worm enters the escape network it stays there until delivery.
	// (VCT can safely bounce back to adaptive channels because whole
	// packets are buffered; a worm stretched across switches cannot.)
	escLocked bool
	// blockSince drives the escape-patience policy (see Config).
	blockSince int64
	// rerouted marks worms that took at least one fault-detour grant.
	rerouted bool
	// msg is the index of the Replay message this worm carries a part of;
	// meaningful only in closed-loop replay mode (see replay.go).
	msg int32
	// srcHost is where the worm injects from; recovery re-sources an
	// aborted worm here.
	srcHost int32
	// Deadlock-recovery state (SetRecovery; see recovery.go). injected
	// counts flits the host has streamed so far (the teardown quantum);
	// lastAdvance is the last cycle any flit of the worm moved or a route
	// was claimed (the stall clock); suspectAt/deadlocked/recovering/
	// aborts mirror the VCT packet fields; scan dedupes the multi-slot
	// chain during the per-cycle detection sweep.
	injected    int32
	lastAdvance int64
	suspectAt   int64
	scan        int64
	aborts      int32
	deadlocked  bool
	recovering  bool
}

// wwheelEv is the wormhole engine's timing-wheel event; amt doubles as
// the head-flit marker for arrivals.
type wwheelEv struct {
	kind  uint8
	vcIdx int32
	amt   int32
	pkt   *wpacket
}

const neverReady = int64(1) << 62

// NewWormSim builds a wormhole simulation. Unlike NewSim, buffers smaller
// than a packet are permitted (and are the point).
func NewWormSim(cfg Config, g *graph.Graph, rt Router, p traffic.Pattern, rate float64) (*WormSim, error) {
	if err := cfg.ValidateWormhole(); err != nil {
		return nil, err
	}
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("netsim: offered load %g flits/cycle/host outside [0,1]", rate)
	}
	nSw := g.N()
	hosts := nSw * cfg.HostsPerSwitch
	nChan := 2*g.M() + hosts
	vcs := cfg.VCs
	s := &WormSim{
		cfg: cfg, g: g, rt: rt, pattern: p, rate: rate,
		rng:   rand.New(rand.NewPCG(cfg.Seed, 0x7ea11e77)),
		nSw:   nSw,
		hosts: hosts,
		nChan: nChan,
		flows: newFlowAcct(rt),
	}
	s.chanDst = make([]int32, nChan)
	s.inChans = make([][]int32, nSw)
	for i, e := range g.Edges() {
		s.chanDst[2*i] = e.V
		s.chanDst[2*i+1] = e.U
		s.inChans[e.V] = append(s.inChans[e.V], int32(2*i))
		s.inChans[e.U] = append(s.inChans[e.U], int32(2*i+1))
	}
	s.thruCount = make([]int, nSw)
	for sw := range s.inChans {
		s.thruCount[sw] = len(s.inChans[sw])
	}
	for h := 0; h < hosts; h++ {
		c := 2*g.M() + h
		sw := h / cfg.HostsPerSwitch
		s.chanDst[c] = int32(sw)
		s.inChans[sw] = append(s.inChans[sw], int32(c))
	}
	slots := nChan * vcs
	s.slotPkt = make([]*wpacket, slots)
	s.buffered = make([]int32, slots)
	s.readyAt = make([]int64, slots)
	for i := range s.readyAt {
		s.readyAt[i] = neverReady
	}
	s.routed = make([]bool, slots)
	s.isEject = make([]bool, slots)
	s.outSlot = make([]int32, slots)
	s.outChan = make([]int32, slots)
	s.forwarded = make([]int32, slots)
	s.credits = make([]int32, slots)
	for i := range s.credits {
		s.credits[i] = int32(cfg.BufFlitsPerVC)
	}
	s.slotOfChan = func(c int32, vc int8) int32 { return c*int32(vcs) + int32(vc) }
	s.inUsed = make([]int64, nChan)
	s.outUsed = make([]int64, nChan)
	s.ejUsed = make([]int64, hosts)
	for i := range s.inUsed {
		s.inUsed[i] = -1
		s.outUsed[i] = -1
	}
	for i := range s.ejUsed {
		s.ejUsed[i] = -1
	}
	s.hostQ = make([][]*wpacket, hosts)
	s.hostCur = make([]*wpacket, hosts)
	s.hostSlot = make([]int32, hosts)
	s.hostInjected = make([]int32, hosts)
	s.rrIn = make([]int, nSw)
	s.chanFlits = make([]int64, nChan)
	s.linkDelay = make([]int64, nChan)
	for i := range s.linkDelay {
		s.linkDelay[i] = cfg.LinkDelayCycles
	}
	s.wheel = newTimingWheel[wwheelEv](cfg.LinkDelayCycles + int64(cfg.PipelineCycles) + 4)
	return s, nil
}

func (s *WormSim) inWindow(t int64) bool {
	return t >= s.cfg.WarmupCycles && t < s.cfg.WarmupCycles+s.cfg.MeasureCycles
}

// SetFaultPlan attaches a fault schedule. Must be called before Run.
//
// Unlike the VCT engine, the wormhole engine supports faults at packet
// granularity only (fail-stop admission): once a component dies, new
// headers are never routed onto its channels, hosts on dead switches
// stop generating, nobody addresses a dead switch, and FaultAware
// routers are notified — but a worm already stretched across a dying
// link keeps draining over it rather than being truncated mid-flight
// (tearing down a partial worm would corrupt every slot in its chain).
// There is no timeout/retry transport either, so a fault set that
// disconnects live traffic from its destination freezes those worms in
// place; they are reported in InFlightAtEnd, and only a full-network
// stall trips the run watchdog. Use the VCT engine for drop/retry
// degradation experiments.
func (s *WormSim) SetFaultPlan(p *FaultPlan) error {
	if s.now != 0 || s.nextID != 0 {
		return fmt.Errorf("netsim: SetFaultPlan must be called before Run")
	}
	if p == nil {
		return fmt.Errorf("netsim: nil fault plan")
	}
	if err := p.Validate(s.g); err != nil {
		return err
	}
	s.plan = p
	s.planIdx = 0
	s.edgeDead = make([]bool, s.g.M())
	s.swDead = make([]bool, s.nSw)
	s.chanDead = make([]bool, s.nChan)
	return nil
}

// SetMonitors arms the runtime invariant monitors for this run. Must be
// called before Run. Monitors are passive: a run that trips none is
// bit-identical to an unmonitored one.
func (s *WormSim) SetMonitors(m Monitors) error {
	if s.now != 0 || s.nextID != 0 {
		return fmt.Errorf("netsim: SetMonitors after Run started")
	}
	if err := m.validate(); err != nil {
		return err
	}
	s.mon = m
	return nil
}

// SetRecovery arms runtime deadlock detection and progressive recovery
// for this run (see package recovery and DESIGN.md). Must be called
// before Run. Detection is passive — stall clocks and the confirmation
// sweep draw no randomness and touch no flow control — so a run that
// never confirms a deadlock stays bit-identical to an unarmed one.
func (s *WormSim) SetRecovery(c recovery.Config) error {
	if s.now != 0 || s.nextID != 0 {
		return fmt.Errorf("netsim: SetRecovery after Run started")
	}
	c = c.Normalize()
	if err := c.Validate(); err != nil {
		return err
	}
	esc, err := recovery.NewEscape(s.g, s.cfg.VCs)
	if err != nil {
		return err
	}
	s.rec = newRecState(c, esc)
	s.chainMark = make([]bool, len(s.slotPkt))
	return nil
}

// violate records the first monitor violation; later ones are dropped.
func (s *WormSim) violate(monitor string, pkt int64, format string, args ...any) {
	if s.violation != nil {
		return
	}
	s.violation = &MonitorViolation{
		Monitor: monitor,
		Cycle:   s.now,
		Packet:  pkt,
		Detail:  fmt.Sprintf(format, args...),
	}
}

// checkConservation verifies the wormhole identity generated ==
// delivered + in-flight + lost. Without recovery this engine never
// drops or loses packets (fail-stop admission keeps doomed packets out
// instead) and lost stays 0; with recovery armed, worms aborted past
// the budget become accounted losses.
func (s *WormSim) checkConservation() {
	if !s.mon.Conservation {
		return
	}
	if s.generatedTotal != s.deliveredTotal+s.inFlight+s.lostTotal {
		s.violate(MonitorConservation, -1, "generated %d != delivered %d + in-flight %d + lost %d",
			s.generatedTotal, s.deliveredTotal, s.inFlight, s.lostTotal)
	}
	s.auditFlits()
}

// auditFlits structurally verifies flit conservation through
// abort-and-reinject: every flit a host ever injected is by now either
// ejected at a destination, torn down by an abort, buffered in some VC
// slot, or in flight on a wire. Runs at every fault epoch and at run
// end when recovery and the conservation monitor are both armed.
func (s *WormSim) auditFlits() {
	if s.rec == nil {
		return
	}
	var resident int64
	for _, b := range s.buffered {
		resident += int64(b)
	}
	for _, wslot := range s.wheel.slots {
		for _, ev := range wslot {
			if ev.kind == evArrive {
				resident++
			}
		}
	}
	if s.flitsInjected != s.flitsEjected+s.rec.tr.AbortedFlits+resident {
		s.violate(MonitorConservation, -1,
			"flit books broken: injected %d != ejected %d + aborted %d + resident %d",
			s.flitsInjected, s.flitsEjected, s.rec.tr.AbortedFlits, resident)
	}
}

// applyFaults fires due fault events and refreshes the channel death
// mask and the router's view.
func (s *WormSim) applyFaults() {
	if s.plan == nil || s.planIdx >= len(s.plan.Events) {
		return
	}
	changed := false
	for s.planIdx < len(s.plan.Events) && s.plan.Events[s.planIdx].Cycle <= s.now {
		ev := s.plan.Events[s.planIdx]
		s.planIdx++
		if ev.Edge >= 0 {
			s.edgeDead[ev.Edge] = !ev.Repair
		} else {
			s.swDead[ev.Switch] = !ev.Repair
		}
		if !ev.Repair {
			s.faultActive = true
		}
		changed = true
	}
	if !changed {
		return
	}
	for i := 0; i < s.g.M(); i++ {
		e := s.g.Edge(i)
		dead := s.edgeDead[i] || s.swDead[e.U] || s.swDead[e.V]
		s.chanDead[2*i] = dead
		s.chanDead[2*i+1] = dead
	}
	for h := 0; h < s.hosts; h++ {
		s.chanDead[2*s.g.M()+h] = s.swDead[h/s.cfg.HostsPerSwitch]
	}
	if fa, ok := s.rt.(FaultAware); ok {
		if s.rec != nil && s.rec.cfg.DrainOnFault {
			// Drain-before-reconfigure: masks take effect immediately, the
			// routing tables swap once the network quiesces (recoverStep).
			s.rec.beginDrain(s.now)
		} else {
			fa.UpdateFaults(s.edgeDead, s.swDead)
		}
	}
	if s.rec != nil {
		// The escape network re-derives on every epoch so recovery
		// reinjections never ride dead links.
		s.rec.rebuild(s.g, s.edgeDead, s.swDead)
	}
	// Fault epoch boundary: audit the books after the masks changed.
	s.checkConservation()
}

// Run executes the schedule and returns the aggregated result. In
// closed-loop replay mode the schedule is ignored: the run ends when the
// workload completes (or can no longer make progress).
func (s *WormSim) Run() (Result, error) {
	end := s.cfg.WarmupCycles + s.cfg.MeasureCycles + s.cfg.DrainCycles
	if s.rep != nil {
		end = s.rep.endCycle()
	}
	watchdog := s.cfg.WatchdogCycles
	if watchdog <= 0 {
		watchdog = Default().WatchdogCycles
	}
	for s.now = 0; s.now < end; s.now++ {
		s.applyFaults()
		s.processEvents()
		s.inject()
		s.route()
		s.forward()
		s.recoverStep()
		if s.violation != nil {
			return s.result(), s.violation
		}
		if s.rep != nil && s.inFlight == 0 {
			break
		}
		if s.inFlight > 0 && s.now-s.lastProgress > watchdog {
			return s.result(), &NoProgressError{Cycle: s.now, InFlight: s.inFlight, WatchdogCycles: watchdog}
		}
	}
	s.finalRecovery()
	s.checkConservation()
	if s.violation != nil {
		return s.result(), s.violation
	}
	return s.result(), nil
}

func (s *WormSim) processEvents() {
	for _, ev := range s.wheel.drain(s.now) {
		switch ev.kind {
		case evArrive:
			s.buffered[ev.vcIdx]++
			if ev.amt == 1 { // head flit
				s.readyAt[ev.vcIdx] = s.now + s.cfg.PipelineCycles
			}
		case evCredit:
			s.credits[ev.vcIdx]++
		case evDeliver:
			s.deliver(ev.pkt, s.now)
		}
	}
}

func (s *WormSim) deliver(p *wpacket, at int64) {
	s.inNetwork--
	s.inFlight--
	s.deliveredTotal++
	s.lastProgress = s.now
	if s.inWindow(at) {
		s.flitsInWindow += int64(s.cfg.PacketFlits)
	}
	if p.measured {
		s.delMeasured++
		lat := at - p.genCycle
		s.latencySum += lat
		s.latencies = append(s.latencies, lat)
		s.hopsSum += int64(p.st.Step)
	}
	if s.rep != nil {
		s.rep.onDeliver(p.msg, at)
	}
	s.flows.onDeliver(p.srcHost, p.dstHost, p.st)
}

// inject is one cycle of host-side work: sourcing new packets (open-loop
// Bernoulli generation, or dependency-gated release in replay mode) and
// streaming queued flits into the switches. Generation for one host
// cannot affect streaming for another within a cycle, so performing all
// generation first is behavior-identical to the historical interleaved
// loop — the RNG draw order is unchanged.
func (s *WormSim) inject() {
	if s.rep != nil {
		s.releaseReady()
	} else {
		s.genTraffic()
	}
	s.driveHosts()
}

// genTraffic runs the open-loop Bernoulli injection process. All RNG
// consumption of the injection path lives here.
func (s *WormSim) genTraffic() {
	pktProb := s.rate / float64(s.cfg.PacketFlits)
	for h := 0; h < s.hosts; h++ {
		if s.rng.Float64() < pktProb {
			p := &wpacket{
				id:         s.nextID,
				srcHost:    int32(h),
				genCycle:   s.now,
				measured:   s.inWindow(s.now),
				blockSince: -1,
				msg:        -1,
			}
			s.nextID++
			p.st.PktID = p.id
			p.dstHost = int32(s.pattern.Dest(h, s.rng))
			p.st.SrcSw = int32(h / s.cfg.HostsPerSwitch)
			p.st.DstSw = p.dstHost / int32(s.cfg.HostsPerSwitch)
			// Fail-stop admission: hosts on dead switches generate
			// nothing and nobody addresses a dead switch (the RNG draws
			// above keep the injection process aligned across fault sets).
			if s.faultActive && (s.swDead[p.st.SrcSw] || s.swDead[p.st.DstSw]) {
				p = nil
			}
			if p != nil {
				s.hostQ[h] = append(s.hostQ[h], p)
				s.generatedTotal++
				if p.measured {
					s.genMeasured++
				}
				s.inFlight++
			}
		}
	}
}

// driveHosts claims injection VCs and streams queued flits, one per host
// per cycle.
func (s *WormSim) driveHosts() {
	vcs := s.cfg.VCs
	for h := 0; h < s.hosts; h++ {
		// Claim an injection VC for the next packet (paused while a drain
		// epoch quiesces the network; worms mid-injection keep streaming).
		if s.hostCur[h] == nil && len(s.hostQ[h]) > 0 && (s.rec == nil || !s.rec.draining) {
			c := int32(2*s.g.M() + h)
			for vc := 0; vc < vcs; vc++ {
				slot := s.slotOfChan(c, int8(vc))
				if s.slotPkt[slot] == nil {
					p := s.hostQ[h][0]
					s.hostQ[h] = s.hostQ[h][1:]
					s.hostCur[h] = p
					s.hostSlot[h] = slot
					s.hostInjected[h] = 0
					s.slotPkt[slot] = p
					s.inNetwork++
					p.lastAdvance = s.now
					break
				}
			}
		}
		// Inject one flit per cycle while credits allow.
		if p := s.hostCur[h]; p != nil {
			slot := s.hostSlot[h]
			if s.credits[slot] > 0 {
				s.credits[slot]--
				s.hostInjected[h]++
				s.flitsInjected++
				p.injected++
				p.lastAdvance = s.now
				var head int32
				if s.hostInjected[h] == 1 {
					head = 1
				}
				s.wheel.schedule(s.now, s.now+1+s.linkDelay[int(slot)/s.cfg.VCs], wwheelEv{
					kind:  evArrive,
					vcIdx: slot,
					amt:   head,
				})
				s.lastProgress = s.now
				if s.hostInjected[h] == int32(s.cfg.PacketFlits) {
					s.hostCur[h] = nil // tail sent; slot frees downstream
				}
			}
		}
	}
}

// route performs VC allocation: headers that have cleared the pipeline
// claim a downstream VC (or the ejection port).
func (s *WormSim) route() {
	vcs := s.cfg.VCs
	for sw := 0; sw < s.nSw; sw++ {
		for _, c := range s.inChans[sw] {
			for vc := 0; vc < vcs; vc++ {
				slot := s.slotOfChan(c, int8(vc))
				p := s.slotPkt[slot]
				if p == nil || s.routed[slot] || s.readyAt[slot] > s.now {
					continue
				}
				if wait := s.now - s.readyAt[slot]; wait > s.maxHOLWait {
					s.maxHOLWait = wait
				}
				if s.mon.MaxHOLWaitCycles > 0 && s.now-s.readyAt[slot] > s.mon.MaxHOLWaitCycles {
					// This engine has no drop/retry transport, so a worm
					// starved of a route (deadlock, or faults that cut its
					// destination) is caught here rather than draining.
					s.violate(MonitorHOLWait, p.id,
						"headered worm waited %d cycles for a route (bound %d) at switch %d channel %d",
						s.now-s.readyAt[slot], s.mon.MaxHOLWaitCycles, sw, c)
				}
				if p.st.DstSw == int32(sw) {
					s.routed[slot] = true
					s.isEject[slot] = true
					s.lastProgress = s.now
					p.lastAdvance = s.now
					s.released(p, int32(sw))
					continue
				}
				if s.mon.HopTTL > 0 && !p.rerouted && !p.recovering && p.st.Step >= s.mon.HopTTL {
					s.violate(MonitorHopTTL, p.id, "worm exceeded the %d-hop route bound (src sw %d, dst sw %d, at sw %d)",
						s.mon.HopTTL, p.st.SrcSw, p.st.DstSw, sw)
					continue
				}
				if p.recovering {
					// A recovery-reinjected worm rides the up*/down* escape
					// network exclusively (it is escLocked from rebirth).
					s.scratch = s.rec.escapeCandidates(p.st, sw, s.scratch[:0])
				} else {
					s.scratch = s.rt.Candidates(p.st, sw, s.scratch[:0])
				}
				bestSlot, bestChan := int32(-1), int32(-1)
				var bestCr int32 = -1
				bestEscape := false
				bestDetour := false
				var bestState uint8
				hasAdaptive := false
				for _, cand := range s.scratch {
					if cand.Escape || p.escLocked {
						if !cand.Escape {
							continue
						}
					} else {
						hasAdaptive = true
					}
					if cand.Escape && !p.escLocked {
						continue // escape considered below, after patience
					}
					oc := s.chanFor(sw, cand)
					if oc < 0 || (s.faultActive && s.chanDead[oc]) {
						continue
					}
					oslot := s.slotOfChan(oc, cand.VC)
					if s.slotPkt[oslot] != nil {
						continue
					}
					if cr := s.credits[oslot]; cr > bestCr {
						bestSlot, bestChan, bestCr, bestEscape, bestState = oslot, oc, cr, cand.Escape, cand.NewState
						bestDetour = cand.Detour
					}
				}
				if bestSlot < 0 && !p.escLocked {
					patienceUp := !hasAdaptive
					if hasAdaptive {
						if p.blockSince < 0 {
							p.blockSince = s.now
						}
						patienceUp = s.now-p.blockSince >= s.cfg.EscapePatienceCycles
					}
					if patienceUp {
						for _, cand := range s.scratch {
							if !cand.Escape {
								continue
							}
							oc := s.chanFor(sw, cand)
							if oc < 0 || (s.faultActive && s.chanDead[oc]) {
								continue
							}
							oslot := s.slotOfChan(oc, cand.VC)
							if s.slotPkt[oslot] != nil {
								continue
							}
							if cr := s.credits[oslot]; cr > bestCr {
								bestSlot, bestChan, bestCr, bestEscape, bestState = oslot, oc, cr, cand.Escape, cand.NewState
								bestDetour = cand.Detour
							}
						}
					}
				}
				if bestSlot < 0 {
					continue
				}
				p.blockSince = -1
				p.lastAdvance = s.now
				s.released(p, int32(sw))
				s.routed[slot] = true
				s.outSlot[slot] = bestSlot
				s.outChan[slot] = bestChan
				s.slotPkt[bestSlot] = p // claim downstream VC
				p.st.Step++
				p.st.RtState = bestState
				if bestEscape {
					p.escLocked = true
				}
				if bestDetour && !p.rerouted {
					p.rerouted = true
					s.reroutedPkts++
				}
				s.lastProgress = s.now
			}
		}
	}
}

// chanFor resolves a candidate to a directed channel, honoring a pinned
// physical edge when the router specified one.
func (s *WormSim) chanFor(sw int, cand Candidate) int32 {
	if ei := cand.pinnedEdge(); ei >= 0 {
		e := s.g.Edge(int(ei))
		if e.U == int32(sw) && e.V == cand.Next {
			return 2 * ei
		}
		if e.V == int32(sw) && e.U == cand.Next {
			return 2*ei + 1
		}
		return -1
	}
	return s.findOutChan(sw, int(cand.Next))
}

// findOutChan locates a directed channel from sw to next, preferring one
// whose output port is idle this cycle.
func (s *WormSim) findOutChan(sw, next int) int32 {
	best := int32(-1)
	for _, h := range s.g.Neighbors(sw) {
		if int(h.To) != next {
			continue
		}
		e := s.g.Edge(int(h.Edge))
		c := 2 * h.Edge
		if int32(sw) != e.U {
			c = 2*h.Edge + 1
		}
		if s.faultActive && s.chanDead[c] {
			continue
		}
		if s.outUsed[c] != s.now {
			return c
		}
		if best < 0 {
			best = c
		}
	}
	return best
}

// forward moves flits: one per input port and one per output port per
// cycle.
func (s *WormSim) forward() {
	vcs := s.cfg.VCs
	pf := int32(s.cfg.PacketFlits)
	for sw := 0; sw < s.nSw; sw++ {
		ins := s.inChans[sw]
		if len(ins) == 0 {
			continue
		}
		// Through traffic first (round-robin), injection channels after.
		thru := ins[:s.thruCount[sw]]
		var order []int32
		if len(thru) > 0 {
			start := s.rrIn[sw] % len(thru)
			s.orderBuf = s.orderBuf[:0]
			for k := 0; k < len(thru); k++ {
				s.orderBuf = append(s.orderBuf, thru[(start+k)%len(thru)])
			}
			s.orderBuf = append(s.orderBuf, ins[s.thruCount[sw]:]...)
			order = s.orderBuf
		} else {
			order = ins
		}
		moved := false
		for _, c := range order {
			if s.inUsed[c] == s.now {
				continue
			}
			for vc := 0; vc < vcs; vc++ {
				slot := s.slotOfChan(c, int8(vc))
				p := s.slotPkt[slot]
				if p == nil || !s.routed[slot] || s.buffered[slot] == 0 {
					continue
				}
				if s.isEject[slot] {
					host := int(p.dstHost)
					if s.ejUsed[host] == s.now {
						continue
					}
					s.ejUsed[host] = s.now
					s.moveFlit(c, slot, p, pf, true, -1, -1)
					break
				}
				oc := s.outChan[slot]
				oslot := s.outSlot[slot]
				if s.outUsed[oc] == s.now || s.credits[oslot] == 0 {
					continue
				}
				s.outUsed[oc] = s.now
				s.moveFlit(c, slot, p, pf, false, oc, oslot)
				break
			}
			if s.inUsed[c] == s.now {
				moved = true
			}
		}
		if moved {
			s.rrIn[sw]++
		}
	}
}

// moveFlit transfers one flit out of slot, handling tail bookkeeping.
func (s *WormSim) moveFlit(c, slot int32, p *wpacket, pf int32, eject bool, oc, oslot int32) {
	s.inUsed[c] = s.now
	s.buffered[slot]--
	s.forwarded[slot]++
	p.lastAdvance = s.now
	s.released(p, s.chanDst[c])
	// Return the freed buffer space to this slot's sender over its wire.
	s.wheel.schedule(s.now, s.now+1+s.linkDelay[c], wwheelEv{kind: evCredit, vcIdx: slot})
	if eject {
		s.flitsEjected++
		if s.forwarded[slot] == pf {
			s.wheel.schedule(s.now, s.now+1+s.cfg.LinkDelayCycles, wwheelEv{kind: evDeliver, pkt: p})
			s.freeSlot(slot)
		}
		s.lastProgress = s.now
		return
	}
	if s.inWindow(s.now) {
		s.chanFlits[oc]++
	}
	s.credits[oslot]--
	var head int32
	if s.forwarded[slot] == 1 {
		head = 1
	}
	s.wheel.schedule(s.now, s.now+1+s.linkDelay[oc], wwheelEv{
		kind:  evArrive,
		vcIdx: oslot,
		amt:   head,
	})
	if s.forwarded[slot] == pf {
		s.freeSlot(slot)
	}
	s.lastProgress = s.now
}

func (s *WormSim) freeSlot(slot int32) {
	s.slotPkt[slot] = nil
	s.routed[slot] = false
	s.isEject[slot] = false
	s.forwarded[slot] = 0
	s.readyAt[slot] = neverReady
}

// recoverStep is the per-cycle deadlock detection sweep (SetRecovery;
// nil-rec runs skip it). Every worm holding at least one VC slot runs
// the suspect → confirm state machine on its stall clock; confirmation
// requires wormWedged — the structural re-check that no flit of the
// worm can possibly move — so congestion (which always has some movable
// resource) is never aborted. The oldest confirmed worm is torn down,
// at most one per cycle, and an open drain epoch closes once the
// network empties.
func (s *WormSim) recoverStep() {
	if s.rec == nil {
		return
	}
	cfg := &s.rec.cfg
	var victim *wpacket
	var victimSw int32 = -1
	mark := s.now + 1
	for slot, p := range s.slotPkt {
		if p == nil || p.scan == mark {
			continue
		}
		p.scan = mark
		if s.now-p.lastAdvance < cfg.StallThresholdCycles {
			continue
		}
		if p.suspectAt == 0 {
			p.suspectAt = s.now
			continue
		}
		if s.now-p.suspectAt < cfg.ConfirmCycles {
			continue
		}
		if !p.deadlocked {
			if !s.wormWedged(p) {
				// Some resource of the worm can still move: congestion,
				// not dependency deadlock. Re-arm the suspicion window.
				p.suspectAt = s.now
				continue
			}
			p.deadlocked = true
			s.rec.tr.Confirmed(s.now, p.id, s.chanDst[slot/s.cfg.VCs])
		}
		if victim == nil || p.genCycle < victim.genCycle ||
			(p.genCycle == victim.genCycle && p.id < victim.id) {
			victim = p
			victimSw = s.chanDst[slot/s.cfg.VCs]
		}
	}
	if victim != nil && s.rec.tr.CanAbort(s.now) {
		s.abortWorm(victim, victimSw)
	}
	if s.rec.draining && s.inNetwork == 0 {
		s.rec.finishDrain(s.now, func() {
			if fa, ok := s.rt.(FaultAware); ok {
				fa.UpdateFaults(s.edgeDead, s.swDead)
			}
		})
	}
}

// released clears the detection state of a worm that just advanced.
// If it was a confirmed deadlock victim, its resumption is accounted:
// a peer abort restored credits or freed a slot and broke the cycle
// (the Disha outcome — only the victim pays the teardown). With
// recovery disarmed deadlocked is never set and this is a field clear.
func (s *WormSim) released(p *wpacket, sw int32) {
	if p.deadlocked && s.rec != nil {
		s.rec.tr.Release(s.now, p.id, sw)
	}
	p.suspectAt, p.deadlocked = 0, false
}

// finalRecovery resolves the abort backlog at the end of a completed
// run: confirmed worms the one-abort-per-cycle pacing had not reached
// yet are torn down now, so the detected == recovered + lost identity
// holds in every returned Result. abortWorm clears every slot of the
// victim, so the sweep naturally visits each worm once.
func (s *WormSim) finalRecovery() {
	if s.rec == nil {
		return
	}
	for slot, p := range s.slotPkt {
		if p != nil && p.deadlocked {
			s.abortWorm(p, s.chanDst[slot/s.cfg.VCs])
		}
	}
}

// wormWedged is the confirmation pass: true only when no flit of the
// worm can possibly move this cycle — every routed slot with buffered
// flits faces a zero-credit downstream VC, every waiting header has no
// claimable candidate, and the host-side injection (if still streaming)
// is out of credits. A worm with an ejection slot is delivering and
// never wedged (the ejection port drains unconditionally).
func (s *WormSim) wormWedged(p *wpacket) bool {
	vcs := s.cfg.VCs
	for slot, q := range s.slotPkt {
		if q != p {
			continue
		}
		sl := int32(slot)
		if s.isEject[sl] {
			return false
		}
		if s.routed[sl] {
			if s.buffered[sl] > 0 && s.credits[s.outSlot[sl]] > 0 {
				return false
			}
			continue
		}
		if s.readyAt[sl] <= s.now && s.headCanRoute(p, int(s.chanDst[slot/vcs])) {
			return false
		}
	}
	if h := int(p.srcHost); s.hostCur[h] == p && s.credits[s.hostSlot[h]] > 0 {
		return false
	}
	return true
}

// headCanRoute mirrors route()'s claim test: does the worm's waiting
// header have any candidate whose downstream VC slot is free on a live
// channel? Credits are irrelevant for the claim itself.
func (s *WormSim) headCanRoute(p *wpacket, sw int) bool {
	if p.recovering {
		s.scratch = s.rec.escapeCandidates(p.st, sw, s.scratch[:0])
	} else {
		s.scratch = s.rt.Candidates(p.st, sw, s.scratch[:0])
	}
	for _, cand := range s.scratch {
		if p.escLocked && !cand.Escape {
			continue
		}
		oc := s.chanFor(sw, cand)
		if oc < 0 || (s.faultActive && s.chanDead[oc]) {
			continue
		}
		if s.slotPkt[s.slotOfChan(oc, cand.VC)] == nil {
			return true
		}
	}
	return false
}

// abortWorm is the Disha-style progressive teardown of a confirmed
// wormhole deadlock victim: every VC slot of its chain is scrubbed
// (buffered flits discarded, in-flight flits and credits on the wire
// cancelled, flow control reset to full), the host NIC is released if
// the worm was still streaming, and the worm is either re-sourced at
// its host pinned to the escape network or — past the abort budget —
// declared lost. All discarded flits are accounted in AbortedFlits so
// the flit books (auditFlits) stay exact.
func (s *WormSim) abortWorm(p *wpacket, sw int32) {
	chain := s.chainBuf[:0]
	for slot, q := range s.slotPkt {
		if q != p {
			continue
		}
		if s.isEject[slot] {
			return // began delivering; it will drain on its own
		}
		chain = append(chain, int32(slot))
	}
	s.chainBuf = chain[:0]
	for _, sl := range chain {
		s.chainMark[sl] = true
	}
	// Scrub the wheel: flits flying toward a chain slot die with the
	// worm, and credits returning to a chain slot are superseded by the
	// full flow-control reset below.
	for i, wslot := range s.wheel.slots {
		kept := wslot[:0]
		for _, ev := range wslot {
			if (ev.kind == evArrive || ev.kind == evCredit) && s.chainMark[ev.vcIdx] {
				continue
			}
			kept = append(kept, ev)
		}
		s.wheel.slots[i] = kept
	}
	for _, sl := range chain {
		s.chainMark[sl] = false
		s.slotPkt[sl] = nil
		s.buffered[sl] = 0
		s.forwarded[sl] = 0
		s.routed[sl] = false
		s.isEject[sl] = false
		s.readyAt[sl] = neverReady
		s.credits[sl] = int32(s.cfg.BufFlitsPerVC)
	}
	if h := int(p.srcHost); s.hostCur[h] == p {
		s.hostCur[h] = nil
	}
	flits := int64(p.injected)
	p.injected = 0
	p.suspectAt, p.deadlocked = 0, false
	p.aborts++
	s.inNetwork--
	s.lastProgress = s.now // teardown frees a resource chain: progress
	lost := int(p.aborts) > s.rec.cfg.AbortBudget ||
		(s.faultActive && s.swDead[p.st.SrcSw])
	if lost {
		s.rec.tr.Aborted(s.now, p.id, sw, flits, p.aborts, true)
		s.lostTotal++
		s.inFlight--
		return
	}
	s.rec.tr.Aborted(s.now, p.id, sw, flits, p.aborts, false)
	p.st.Step = 0
	p.st.RtState = 0
	p.blockSince = -1
	p.escLocked = true // reborn directly onto the escape network
	p.recovering = true
	s.hostQ[p.srcHost] = append(s.hostQ[p.srcHost], p)
}

func (s *WormSim) result() Result {
	cyc := s.cfg.CycleNS()
	r := Result{
		OfferedFlitsPerCycle: s.rate,
		OfferedGbps:          s.rate * s.cfg.GbpsPerFlitPerCycle(),
		GeneratedMeasured:    s.genMeasured,
		DeliveredMeasured:    s.delMeasured,
		DeliveredTotal:       s.deliveredTotal,
		GeneratedTotal:       s.generatedTotal,
		InFlightAtEnd:        s.inFlight,
		MaxHOLWaitCycles:     s.maxHOLWait,
		Rerouted:             s.reroutedPkts,
		Lost:                 s.lostTotal,
		InjectedFlits:        s.flitsInjected,
		EjectedFlits:         s.flitsEjected,
		ChannelFlits:         s.chanFlits[:2*s.g.M()],
	}
	flitsPerHostPerCycle := float64(s.flitsInWindow) / float64(s.cfg.MeasureCycles) / float64(s.hosts)
	r.AcceptedGbps = flitsPerHostPerCycle * s.cfg.GbpsPerFlitPerCycle()
	if s.delMeasured > 0 {
		r.AvgLatencyNS = float64(s.latencySum) / float64(s.delMeasured) * cyc
		r.AvgHops = float64(s.hopsSum) / float64(s.delMeasured)
		sorted := append([]int64(nil), s.latencies...)
		sortInt64s(sorted)
		idx := int(float64(len(sorted)) * 0.99)
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		r.P99LatencyNS = float64(sorted[idx]) * cyc
		r.MaxLatencyNS = float64(sorted[len(sorted)-1]) * cyc
	}
	if s.genMeasured > 0 {
		undelivered := s.genMeasured - s.delMeasured
		r.Saturated = float64(undelivered) > 0.02*float64(s.genMeasured)
	}
	if s.rep != nil {
		s.rep.fill(&r, cyc)
	}
	if s.rec != nil {
		s.rec.fill(&r, s.now)
	}
	s.flows.fill(&r)
	return r
}
