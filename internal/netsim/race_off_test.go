//go:build !race

package netsim

const raceDetectorEnabled = false
