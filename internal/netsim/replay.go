package netsim

import (
	"fmt"

	"dsnet/internal/graph"
)

// This file implements the closed-loop replay mode shared by the VCT and
// wormhole engines: instead of the open-loop Bernoulli injection process,
// the simulator executes a deterministic message DAG in which every
// message may inject only after the messages it depends on have been
// fully DELIVERED. The reported metric is the collective completion time
// (makespan) with a per-phase breakdown, not a steady-state latency
// curve. internal/collectives generates such DAGs for the classic
// collective algorithms and bridges them here via ToReplay.

// ReplayMessage is one dependency-gated message of a closed-loop
// workload. A message larger than one packet is segmented into
// ceil(Flits/PacketFlits) packets, all released together; the message
// counts as delivered when its last packet is delivered.
type ReplayMessage struct {
	SrcHost int32
	DstHost int32
	Flits   int32
	// Deps indexes Replay.Messages: all listed messages must be delivered
	// before this one injects at SrcHost.
	Deps []int32
	// Phase tags the message for the per-phase makespan breakdown
	// (indexes Replay.Phases).
	Phase int32
}

// Replay is a closed-loop workload: a message DAG plus phase labels.
type Replay struct {
	Name     string
	Phases   []string
	Messages []ReplayMessage
	// MaxCycles bounds the run (0 selects DefaultReplayMaxCycles). The
	// warmup/measure/drain schedule of Config is ignored in replay mode:
	// the run ends as soon as the workload completes or the bound is hit.
	MaxCycles int64
}

// DefaultReplayMaxCycles bounds replay runs whose Replay.MaxCycles is 0.
// The no-progress watchdog ends stuck runs long before this; the bound
// only caps pathologically slow but live workloads.
const DefaultReplayMaxCycles = 50_000_000

// Validate checks endpoints against the host count and that the
// dependency graph is acyclic, so the replay can always make progress.
func (r *Replay) Validate(hosts int) error {
	n := len(r.Messages)
	if n == 0 {
		return fmt.Errorf("netsim: replay %q has no messages", r.Name)
	}
	indeg := make([]int, n)
	dependents := make([][]int32, n)
	for i, m := range r.Messages {
		if m.SrcHost < 0 || int(m.SrcHost) >= hosts || m.DstHost < 0 || int(m.DstHost) >= hosts {
			return fmt.Errorf("netsim: replay message %d endpoints (%d -> %d) outside [0,%d)", i, m.SrcHost, m.DstHost, hosts)
		}
		if m.SrcHost == m.DstHost {
			return fmt.Errorf("netsim: replay message %d sends host %d to itself", i, m.SrcHost)
		}
		if m.Flits < 1 {
			return fmt.Errorf("netsim: replay message %d has %d flits", i, m.Flits)
		}
		if m.Phase < 0 || (len(r.Phases) > 0 && int(m.Phase) >= len(r.Phases)) {
			return fmt.Errorf("netsim: replay message %d phase %d outside [0,%d)", i, m.Phase, len(r.Phases))
		}
		for _, dep := range m.Deps {
			if dep < 0 || int(dep) >= n {
				return fmt.Errorf("netsim: replay message %d depends on unknown message %d", i, dep)
			}
			indeg[i]++
			dependents[dep] = append(dependents[dep], int32(i))
		}
	}
	ready := make([]int32, 0, n)
	for i, deg := range indeg {
		if deg == 0 {
			ready = append(ready, int32(i))
		}
	}
	seen := 0
	for len(ready) > 0 {
		m := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		seen++
		for _, dep := range dependents[m] {
			indeg[dep]--
			if indeg[dep] == 0 {
				ready = append(ready, dep)
			}
		}
	}
	if seen != n {
		return fmt.Errorf("netsim: replay %q dependency graph has a cycle", r.Name)
	}
	return nil
}

// replayState is the runtime bookkeeping of one replayed workload,
// shared by the VCT and wormhole engines.
type replayState struct {
	r          *Replay
	packets    []int32   // packets per message
	remaining  []int32   // undelivered packets per message
	unmet      []int32   // unmet dependency count per message
	dependents [][]int32 // reverse dependency edges
	ready      []int32   // FIFO of messages cleared to inject
	done       int       // fully delivered messages
	phaseEnd   []int64   // last delivery cycle per phase, -1 if none yet
	makespan   int64     // last delivery cycle overall
}

func newReplayState(r *Replay, packetFlits, hosts int) (*replayState, error) {
	if err := r.Validate(hosts); err != nil {
		return nil, err
	}
	n := len(r.Messages)
	phases := len(r.Phases)
	rs := &replayState{
		r:          r,
		packets:    make([]int32, n),
		remaining:  make([]int32, n),
		unmet:      make([]int32, n),
		dependents: make([][]int32, n),
	}
	for i, m := range r.Messages {
		pk := (m.Flits + int32(packetFlits) - 1) / int32(packetFlits)
		rs.packets[i] = pk
		rs.remaining[i] = pk
		rs.unmet[i] = int32(len(m.Deps))
		for _, dep := range m.Deps {
			rs.dependents[dep] = append(rs.dependents[dep], int32(i))
		}
		if int(m.Phase) >= phases {
			phases = int(m.Phase) + 1
		}
	}
	for i := range r.Messages {
		if rs.unmet[i] == 0 {
			rs.ready = append(rs.ready, int32(i))
		}
	}
	rs.phaseEnd = make([]int64, phases)
	for i := range rs.phaseEnd {
		rs.phaseEnd[i] = -1
	}
	return rs, nil
}

// onDeliver records one delivered packet of message mi at cycle at and
// releases any dependents whose last dependency this completes.
func (rs *replayState) onDeliver(mi int32, at int64) {
	rs.remaining[mi]--
	if rs.remaining[mi] > 0 {
		return
	}
	rs.done++
	if at > rs.makespan {
		rs.makespan = at
	}
	if ph := rs.r.Messages[mi].Phase; at > rs.phaseEnd[ph] {
		rs.phaseEnd[ph] = at
	}
	for _, dep := range rs.dependents[mi] {
		rs.unmet[dep]--
		if rs.unmet[dep] == 0 {
			rs.ready = append(rs.ready, dep)
		}
	}
}

func (rs *replayState) completed() bool { return rs.done == len(rs.r.Messages) }

// endCycle returns the run bound for this workload.
func (rs *replayState) endCycle() int64 {
	if rs.r.MaxCycles > 0 {
		return rs.r.MaxCycles
	}
	return DefaultReplayMaxCycles
}

// fill populates the replay metrics of a Result.
func (rs *replayState) fill(r *Result, cyc float64) {
	r.ReplayMessages = int64(len(rs.r.Messages))
	r.ReplayDelivered = int64(rs.done)
	r.ReplayCompleted = rs.completed()
	r.MakespanCycles = rs.makespan
	r.MakespanNS = float64(rs.makespan) * cyc
	r.PhaseEndNS = make([]float64, len(rs.phaseEnd))
	for i, c := range rs.phaseEnd {
		r.PhaseEndNS[i] = float64(c) * cyc
	}
}

// SetReplay switches the simulation into closed-loop replay mode: the
// offered-load injection process is disabled and the workload's messages
// inject as their dependencies deliver. Must be called before Run.
// Composes with SetFaultPlan: packets lost to faults retry through the
// transport layer, and a workload whose messages become undeliverable
// ends via the progress watchdog with ReplayCompleted == false.
func (s *Sim) SetReplay(r *Replay) error {
	if s.now != 0 || s.nextID != 0 {
		return fmt.Errorf("netsim: SetReplay after Run started")
	}
	if r == nil {
		return fmt.Errorf("netsim: nil replay")
	}
	rep, err := newReplayState(r, s.cfg.PacketFlits, s.hosts)
	if err != nil {
		return err
	}
	s.rep = rep
	return nil
}

// releaseReady converts the messages whose dependencies are all
// delivered into packets on their source-host queues.
func (s *Sim) releaseReady() {
	for len(s.rep.ready) > 0 {
		mi := s.rep.ready[0]
		s.rep.ready = s.rep.ready[1:]
		m := &s.rep.r.Messages[mi]
		for k := int32(0); k < s.rep.packets[mi]; k++ {
			p := &packet{
				id:         s.nextID,
				srcHost:    m.SrcHost,
				dstHost:    m.DstHost,
				genCycle:   s.now,
				measured:   true,
				blockSince: -1,
				msg:        mi,
			}
			s.nextID++
			p.st.PktID = p.id
			p.st.SrcSw = m.SrcHost / int32(s.cfg.HostsPerSwitch)
			p.st.DstSw = m.DstHost / int32(s.cfg.HostsPerSwitch)
			s.hostQ[m.SrcHost] = append(s.hostQ[m.SrcHost], p)
			s.trace(p, "GEN", "src", m.SrcHost, "dst", p.dstHost, "msg", mi)
			s.generatedTotal++
			s.genMeasured++
			s.inFlight++
		}
		s.lastProgress = s.now
	}
}

// NewSimReplay builds a VCT simulation executing the closed-loop
// workload r on graph g under router rt (no open-loop traffic).
func NewSimReplay(cfg Config, g *graph.Graph, rt Router, r *Replay) (*Sim, error) {
	s, err := NewSim(cfg, g, rt, nil, 0)
	if err != nil {
		return nil, err
	}
	if err := s.SetReplay(r); err != nil {
		return nil, err
	}
	return s, nil
}

// SetReplay switches the wormhole simulation into closed-loop replay
// mode; see (*Sim).SetReplay. The wormhole engine has no drop/retry
// transport, so under a FaultPlan a workload that loses its path freezes
// and ends via the progress watchdog; use the VCT engine for
// collectives-under-failure experiments.
func (s *WormSim) SetReplay(r *Replay) error {
	if s.now != 0 || s.nextID != 0 {
		return fmt.Errorf("netsim: SetReplay after Run started")
	}
	if r == nil {
		return fmt.Errorf("netsim: nil replay")
	}
	rep, err := newReplayState(r, s.cfg.PacketFlits, s.hosts)
	if err != nil {
		return err
	}
	s.rep = rep
	return nil
}

// releaseReady is the wormhole counterpart of (*Sim).releaseReady.
func (s *WormSim) releaseReady() {
	for len(s.rep.ready) > 0 {
		mi := s.rep.ready[0]
		s.rep.ready = s.rep.ready[1:]
		m := &s.rep.r.Messages[mi]
		for k := int32(0); k < s.rep.packets[mi]; k++ {
			p := &wpacket{
				id:         s.nextID,
				srcHost:    m.SrcHost,
				dstHost:    m.DstHost,
				genCycle:   s.now,
				measured:   true,
				blockSince: -1,
				msg:        mi,
			}
			s.nextID++
			p.st.PktID = p.id
			p.st.SrcSw = m.SrcHost / int32(s.cfg.HostsPerSwitch)
			p.st.DstSw = m.DstHost / int32(s.cfg.HostsPerSwitch)
			s.hostQ[m.SrcHost] = append(s.hostQ[m.SrcHost], p)
			s.generatedTotal++
			s.genMeasured++
			s.inFlight++
		}
		s.lastProgress = s.now
	}
}

// NewWormSimReplay builds a wormhole simulation executing the
// closed-loop workload r on graph g under router rt.
func NewWormSimReplay(cfg Config, g *graph.Graph, rt Router, r *Replay) (*WormSim, error) {
	s, err := NewWormSim(cfg, g, rt, nil, 0)
	if err != nil {
		return nil, err
	}
	if err := s.SetReplay(r); err != nil {
		return nil, err
	}
	return s, nil
}
