package netsim

import (
	"math"
	"testing"

	"dsnet/internal/core"
	"dsnet/internal/traffic"
)

func wormCfg() Config {
	c := Default()
	// Smaller than a packet (wormhole regime) but at least the credit
	// round trip (2*(1+linkDelay)+1 = 19 cycles), so an uncontended worm
	// streams at full rate.
	c.BufFlitsPerVC = 20
	c.WarmupCycles = 3000
	c.MeasureCycles = 6000
	c.DrainCycles = 10000
	return c
}

func runWorm(t *testing.T, cfg Config, rate float64) Result {
	t.Helper()
	g := torusGraph(t)
	rt, err := NewDuatoUpDown(g, cfg.VCs)
	if err != nil {
		t.Fatal(err)
	}
	pat := traffic.Uniform{Hosts: g.N() * cfg.HostsPerSwitch}
	s, err := NewWormSim(cfg, g, rt, pat, rate)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWormValidate(t *testing.T) {
	cfg := wormCfg()
	cfg.BufFlitsPerVC = 0
	g := torusGraph(t)
	rt, err := NewDuatoUpDown(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWormSim(cfg, g, rt, traffic.Uniform{Hosts: 256}, 0.1); err == nil {
		t.Fatal("zero buffers accepted")
	}
	if _, err := NewWormSim(wormCfg(), g, rt, traffic.Uniform{Hosts: 256}, -1); err == nil {
		t.Fatal("negative rate accepted")
	}
	// Wormhole config is not valid for VCT...
	if err := wormCfg().Validate(); err == nil {
		t.Fatal("VCT validation passed sub-packet buffers")
	}
	// ...but is valid for wormhole.
	if err := wormCfg().ValidateWormhole(); err != nil {
		t.Fatal(err)
	}
}

func TestWormDeliversAndConserves(t *testing.T) {
	res := runWorm(t, wormCfg(), 0.05)
	if res.DeliveredMeasured == 0 {
		t.Fatal("nothing delivered")
	}
	if res.GeneratedTotal != res.DeliveredTotal+res.InFlightAtEnd {
		t.Fatalf("conservation violated: gen=%d del=%d inflight=%d",
			res.GeneratedTotal, res.DeliveredTotal, res.InFlightAtEnd)
	}
	if res.Saturated {
		t.Fatalf("saturated at 5%% load: %v", res)
	}
}

// Wormhole zero-load latency matches VCT's: cut-through pipelining makes
// the buffer size irrelevant without contention.
func TestWormZeroLoadMatchesVCT(t *testing.T) {
	worm := runWorm(t, wormCfg(), 0.01)
	vctCfg := wormCfg()
	vctCfg.BufFlitsPerVC = vctCfg.PacketFlits
	vct := runSim(t, vctCfg, torusGraph(t), 0.01)
	if math.Abs(worm.AvgLatencyNS-vct.AvgLatencyNS) > 0.06*vct.AvgLatencyNS {
		t.Fatalf("wormhole zero-load %.0f ns vs VCT %.0f ns", worm.AvgLatencyNS, vct.AvgLatencyNS)
	}
}

// Under contention, wormhole saturates earlier than VCT: blocked worms
// hold channels across switches instead of absorbing into buffers.
func TestWormSaturatesEarlierThanVCT(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("heavy saturation comparison in -race mode")
	}
	rate := 0.22
	worm := runWorm(t, wormCfg(), rate)
	vctCfg := wormCfg()
	vctCfg.BufFlitsPerVC = vctCfg.PacketFlits
	vct := runSim(t, vctCfg, torusGraph(t), rate)
	if worm.AcceptedGbps > vct.AcceptedGbps*1.02 {
		t.Fatalf("wormhole accepted %.2f Gbps above VCT %.2f at heavy load", worm.AcceptedGbps, vct.AcceptedGbps)
	}
}

// Buffers below the credit round trip throttle even an uncontended worm:
// the sender stalls waiting for credits, a real flow-control effect the
// flit-level engine captures.
func TestWormTinyBuffersThrottle(t *testing.T) {
	tiny := wormCfg()
	tiny.BufFlitsPerVC = 6 // far below the 19-cycle credit RTT
	slow := runWorm(t, tiny, 0.01)
	fast := runWorm(t, wormCfg(), 0.01)
	if slow.AvgLatencyNS <= fast.AvgLatencyNS*1.05 {
		t.Fatalf("6-flit buffers latency %.0f ns not above RTT-sized buffers %.0f ns",
			slow.AvgLatencyNS, fast.AvgLatencyNS)
	}
}

func TestWormDeterminism(t *testing.T) {
	a := runWorm(t, wormCfg(), 0.08)
	b := runWorm(t, wormCfg(), 0.08)
	if a.AvgLatencyNS != b.AvgLatencyNS || a.DeliveredTotal != b.DeliveredTotal {
		t.Fatal("same seed diverged")
	}
}

// The DSN source-routed custom routing also drives the wormhole engine:
// its channel classes were designed for exactly this switching mode
// (Section V.A).
func TestWormWithDSNCustomRouting(t *testing.T) {
	d, err := core.NewV(60)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewDSNSourceRouted(d)
	if err != nil {
		t.Fatal(err)
	}
	cfg := wormCfg()
	pat := traffic.Uniform{Hosts: d.N * cfg.HostsPerSwitch}
	s, err := NewWormSim(cfg, d.Graph(), rt, pat, 0.008)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredMeasured == 0 {
		t.Fatal("nothing delivered")
	}
	if res.Saturated {
		t.Fatalf("custom wormhole saturated at 0.8%% load: %v", res)
	}
}

func TestWormHighLoadNoDeadlock(t *testing.T) {
	// Past saturation the watchdog must not trip: the escape network
	// keeps draining worms.
	cfg := wormCfg()
	cfg.WarmupCycles = 2000
	cfg.MeasureCycles = 4000
	cfg.DrainCycles = 4000
	res := runWorm(t, cfg, 0.6)
	if !res.Saturated {
		t.Fatalf("60%% offered load should saturate small-buffer wormhole: %v", res)
	}
	if res.DeliveredTotal == 0 {
		t.Fatal("nothing delivered at all: deadlock?")
	}
}
