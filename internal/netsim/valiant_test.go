package netsim

import (
	"testing"

	"dsnet/internal/topology"
	"dsnet/internal/traffic"
)

func TestValiantValidation(t *testing.T) {
	if _, err := NewValiant(torusGraph(t), 1); err == nil {
		t.Fatal("1 VC accepted")
	}
}

func TestValiantDeliversUniform(t *testing.T) {
	g := torusGraph(t)
	rt, err := NewValiant(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := shortCfg()
	pat := traffic.Uniform{Hosts: 256}
	sim, err := NewSim(cfg, g, rt, pat, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturated || res.DeliveredMeasured == 0 {
		t.Fatalf("Valiant at 4%% uniform: %v", res)
	}
	// Valiant's two phases roughly double the hop count vs minimal.
	minimal := runSim(t, cfg, g, 0.04)
	if res.AvgHops < 1.5*minimal.AvgHops {
		t.Fatalf("Valiant hops %.2f not well above minimal %.2f", res.AvgHops, minimal.AvgHops)
	}
	if res.AvgHops > 2.6*minimal.AvgHops {
		t.Fatalf("Valiant hops %.2f implausibly high vs minimal %.2f", res.AvgHops, minimal.AvgHops)
	}
}

// The classic Valiant result: under the adversarial tornado permutation,
// randomizing the first phase beats minimal routing, which concentrates
// all load on one ring direction.
func TestValiantBeatsMinimalOnTornado(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("heavy saturation comparison in -race mode")
	}
	tor, err := topology.Torus2D(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	g := tor.Graph()
	cfg := shortCfg()
	pat, err := traffic.NewTornado(64, cfg.HostsPerSwitch)
	if err != nil {
		t.Fatal(err)
	}
	rate := 0.12
	minimal, err := NewDuatoUpDown(g, cfg.VCs)
	if err != nil {
		t.Fatal(err)
	}
	simMin, err := NewSim(cfg, g, minimal, pat, rate)
	if err != nil {
		t.Fatal(err)
	}
	resMin, _ := simMin.Run()

	val, err := NewValiant(g, cfg.VCs)
	if err != nil {
		t.Fatal(err)
	}
	simVal, err := NewSim(cfg, g, val, pat, rate)
	if err != nil {
		t.Fatal(err)
	}
	resVal, err := simVal.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !resMin.Saturated {
		t.Fatalf("minimal routing should saturate under tornado at %.0f Gbps/host offered: %v",
			rate*cfg.LinkGbps, resMin)
	}
	if resVal.AcceptedGbps <= resMin.AcceptedGbps {
		t.Fatalf("Valiant accepted %.2f Gbps not above minimal %.2f under tornado",
			resVal.AcceptedGbps, resMin.AcceptedGbps)
	}
}

func TestValiantDeterministicMid(t *testing.T) {
	g := torusGraph(t)
	rt, err := NewValiant(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	st := PacketState{SrcSw: 0, DstSw: 30, PktID: 42}
	a := rt.Candidates(st, 5, nil)
	b := rt.Candidates(st, 5, nil)
	if len(a) != len(b) {
		t.Fatal("nondeterministic candidates")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic candidates")
		}
	}
	// Different packets spread over different intermediates.
	mids := map[int]bool{}
	for id := int64(0); id < 50; id++ {
		mids[rt.mid(PacketState{PktID: id})] = true
	}
	if len(mids) < 20 {
		t.Fatalf("only %d distinct intermediates over 50 packets", len(mids))
	}
}
