package netsim

import (
	"fmt"

	"dsnet/internal/graph"
	"dsnet/internal/routing"
)

// Valiant implements Valiant load balancing on top of the adaptive
// framework: each packet first routes minimally to a per-packet
// pseudo-random intermediate switch, then minimally to its destination,
// trading path length for immunity to adversarial permutations such as
// tornado traffic. VC 0 remains the up*/down* escape channel; the
// retarget point starts a fresh legal escape path, so deadlock freedom is
// unchanged.
//
// RtState bit 0 is the escape descent latch; bit 1 records that the
// intermediate has been reached.
type Valiant struct {
	g   *graph.Graph
	dt  *routing.DistanceTable
	ud  *routing.UpDown
	vcs int
	n   int
}

const valReached = 0x2

// NewValiant builds the randomized two-phase router.
func NewValiant(g *graph.Graph, vcs int) (*Valiant, error) {
	if vcs < 2 {
		return nil, fmt.Errorf("netsim: Valiant routing needs >= 2 VCs, got %d", vcs)
	}
	ud, err := routing.NewUpDown(g, 0)
	if err != nil {
		return nil, err
	}
	return &Valiant{g: g, dt: routing.NewDistanceTable(g), ud: ud, vcs: vcs, n: g.N()}, nil
}

// splitmix64 is the standard 64-bit finalizer used to derandomize the
// intermediate choice per packet.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mid returns the packet's intermediate switch.
func (r *Valiant) mid(st PacketState) int {
	return int(splitmix64(uint64(st.PktID)) % uint64(r.n))
}

// Candidates implements Router.
func (r *Valiant) Candidates(st PacketState, sw int, buf []Candidate) []Candidate {
	dst := int(st.DstSw)
	if sw == dst {
		return buf
	}
	reached := st.RtState&valReached != 0
	target := dst
	if !reached {
		m := r.mid(st)
		if m == int(st.SrcSw) || m == dst || m == sw {
			reached = true // degenerate or arrived: go straight to dst
		} else {
			target = m
		}
	}
	state := uint8(0)
	if reached {
		state = valReached
	}
	du := r.dt.D(sw, target)
	for _, h := range r.g.Neighbors(sw) {
		if r.dt.D(int(h.To), target) == du-1 {
			for vc := 1; vc < r.vcs; vc++ {
				buf = append(buf, Candidate{Next: h.To, VC: int8(vc), NewState: state})
			}
		}
	}
	next, down := r.ud.NextHop(sw, target, st.RtState&1 != 0)
	if next >= 0 {
		esc := state
		if st.RtState&1 != 0 || down {
			esc |= 1
		}
		buf = append(buf, Candidate{Next: int32(next), VC: 0, Escape: true, NewState: esc})
	}
	return buf
}
