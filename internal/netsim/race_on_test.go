//go:build race

package netsim

// Heavyweight perf-assertion tests skip under the race detector: its
// 8-10x slowdown pushes the suite past go test's default timeout while
// adding no race coverage beyond what the functional tests (which run
// the same simulator loops) already provide.
const raceDetectorEnabled = true
