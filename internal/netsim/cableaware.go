package netsim

import (
	"fmt"
	"math"

	"dsnet/internal/graph"
	"dsnet/internal/layout"
	"dsnet/internal/traffic"
)

// NewSimCableAware builds a VCT simulation whose inter-switch link delays
// are derived from the physical cable lengths of the Section VI.B
// floorplan (nsPerMetre of propagation, typically 5 ns/m, plus the
// configured base injection delay), instead of the paper's constant
// 20 ns. This closes the loop between Figures 9 and 10: topologies with
// longer cables now pay for them in simulated latency too, an effect the
// authors' simulator did not model.
//
// Host injection/ejection links keep the configured constant delay.
func NewSimCableAware(cfg Config, g *graph.Graph, rt Router, p traffic.Pattern, rate float64, l *layout.Layout, nsPerMetre float64) (*Sim, error) {
	if g.N() != l.N {
		return nil, fmt.Errorf("netsim: graph has %d switches, layout %d", g.N(), l.N)
	}
	if nsPerMetre < 0 {
		return nil, fmt.Errorf("netsim: negative propagation %g ns/m", nsPerMetre)
	}
	s, err := NewSim(cfg, g, rt, p, rate)
	if err != nil {
		return nil, err
	}
	cyc := cfg.CycleNS()
	maxDelay := cfg.LinkDelayCycles
	for i, e := range g.Edges() {
		metres := l.CableLength(int(e.U), int(e.V))
		d := int64(math.Ceil(metres * nsPerMetre / cyc))
		if d < 1 {
			d = 1
		}
		s.linkDelay[2*i] = d
		s.linkDelay[2*i+1] = d
		if d > maxDelay {
			maxDelay = d
		}
	}
	s.maxDelay = maxDelay
	s.wheel = newTimingWheel[wheelEv](int64(cfg.PacketFlits) + maxDelay + 2)
	return s, nil
}

// NewWormSimCableAware is the wormhole counterpart of NewSimCableAware.
func NewWormSimCableAware(cfg Config, g *graph.Graph, rt Router, p traffic.Pattern, rate float64, l *layout.Layout, nsPerMetre float64) (*WormSim, error) {
	if g.N() != l.N {
		return nil, fmt.Errorf("netsim: graph has %d switches, layout %d", g.N(), l.N)
	}
	if nsPerMetre < 0 {
		return nil, fmt.Errorf("netsim: negative propagation %g ns/m", nsPerMetre)
	}
	s, err := NewWormSim(cfg, g, rt, p, rate)
	if err != nil {
		return nil, err
	}
	cyc := cfg.CycleNS()
	maxDelay := cfg.LinkDelayCycles
	for i, e := range g.Edges() {
		metres := l.CableLength(int(e.U), int(e.V))
		d := int64(math.Ceil(metres * nsPerMetre / cyc))
		if d < 1 {
			d = 1
		}
		s.linkDelay[2*i] = d
		s.linkDelay[2*i+1] = d
		if d > maxDelay {
			maxDelay = d
		}
	}
	s.wheel = newTimingWheel[wwheelEv](maxDelay + int64(cfg.PipelineCycles) + 4)
	return s, nil
}
