package netsim

import "math/bits"

// PathIndexer is implemented by multipath routers that encode the
// selected source-route index in the packet's RtState. When a
// simulation's router implements it, both engines keep per-flow books
// at delivery time: out-of-order arrivals (a delivered packet with a
// smaller PktID than one the flow already delivered) and the set of
// distinct paths each flow's packets actually rode. Routers that do not
// implement the interface get no flow accounting and their Results stay
// byte-identical to previous engine versions.
type PathIndexer interface {
	// PathIndex returns the path index encoded in the packet state, or
	// -1 when no path was ever assigned.
	PathIndex(st PacketState) int
}

// flowStats is the per-(srcHost, dstHost) delivery book.
type flowStats struct {
	maxPktID int64  // largest PktID delivered so far
	paths    uint16 // bitmask of path indices observed (index 15 collects overflow)
	any      bool
}

// flowAcct accumulates reorder and path-spread statistics. A nil
// *flowAcct is valid and all methods are no-ops, so the engines call the
// hooks unconditionally.
type flowAcct struct {
	pi         PathIndexer
	flows      map[int64]*flowStats
	outOfOrder int64
}

// newFlowAcct returns the accounting state for a router, or nil when the
// router does not expose path indices.
func newFlowAcct(rt Router) *flowAcct {
	if pi, ok := rt.(PathIndexer); ok {
		return &flowAcct{pi: pi, flows: make(map[int64]*flowStats)}
	}
	return nil
}

// onDeliver records one delivery. PktIDs are allocated in generation
// order per fabric, hence monotone per flow, so a delivered packet with
// a smaller ID than its flow's high-water mark arrived out of order.
func (f *flowAcct) onDeliver(srcHost, dstHost int32, st PacketState) {
	if f == nil {
		return
	}
	key := int64(srcHost)<<32 | int64(uint32(dstHost))
	fs := f.flows[key]
	if fs == nil {
		fs = &flowStats{}
		f.flows[key] = fs
	}
	if fs.any && st.PktID < fs.maxPktID {
		f.outOfOrder++
	}
	if st.PktID > fs.maxPktID || !fs.any {
		fs.maxPktID = st.PktID
	}
	fs.any = true
	if idx := f.pi.PathIndex(st); idx >= 0 {
		if idx > 15 {
			idx = 15
		}
		fs.paths |= 1 << idx
	}
}

// fill writes the aggregate columns. PathSpread is the mean number of
// distinct paths per flow with at least one delivery — an
// order-independent sum over the flow map, so the map iteration below
// cannot leak iteration order into the Result.
func (f *flowAcct) fill(r *Result) {
	if f == nil {
		return
	}
	r.OutOfOrder = f.outOfOrder
	var sum, n int64
	for _, fs := range f.flows { // dsnlint:ok maprange order-independent sum
		sum += int64(bits.OnesCount16(fs.paths))
		n++
	}
	if n > 0 {
		r.PathSpread = float64(sum) / float64(n)
	}
}
