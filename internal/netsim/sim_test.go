package netsim

import (
	"errors"
	"math"
	"strings"
	"testing"

	"dsnet/internal/core"
	"dsnet/internal/graph"
	"dsnet/internal/topology"
	"dsnet/internal/traffic"
)

func shortCfg() Config {
	c := Default()
	c.WarmupCycles = 3000
	c.MeasureCycles = 6000
	c.DrainCycles = 8000
	return c
}

func torusGraph(t *testing.T) *graph.Graph {
	t.Helper()
	tor, err := topology.Torus2D(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	return tor.Graph()
}

func dsnGraph(t *testing.T) *core.DSN {
	t.Helper()
	d, err := core.New(64, 5)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func runSim(t *testing.T, cfg Config, g *graph.Graph, rate float64) Result {
	t.Helper()
	rt, err := NewDuatoUpDown(g, cfg.VCs)
	if err != nil {
		t.Fatal(err)
	}
	pat := traffic.Uniform{Hosts: g.N() * cfg.HostsPerSwitch}
	s, err := NewSim(cfg, g, rt, pat, rate)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	c := Default()
	c.BufFlitsPerVC = 10 // < packet size: VCT violated
	if err := c.Validate(); err == nil {
		t.Fatal("undersized buffers accepted")
	}
	c = Default()
	c.VCs = 0
	if err := c.Validate(); err == nil {
		t.Fatal("zero VCs accepted")
	}
	c = Default()
	c.MeasureCycles = 0
	if err := c.Validate(); err == nil {
		t.Fatal("zero measurement accepted")
	}
}

func TestCycleNS(t *testing.T) {
	c := Default()
	want := 256.0 / 96.0
	if math.Abs(c.CycleNS()-want) > 1e-12 {
		t.Fatalf("cycle %g ns, want %g", c.CycleNS(), want)
	}
}

func TestNewSimValidation(t *testing.T) {
	g := torusGraph(t)
	rt, err := NewDuatoUpDown(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	pat := traffic.Uniform{Hosts: 256}
	if _, err := NewSim(Default(), g, rt, pat, -0.1); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := NewSim(Default(), g, rt, pat, 1.5); err == nil {
		t.Fatal("rate > 1 accepted")
	}
	bad := Default()
	bad.VCs = 0
	if _, err := NewSim(bad, g, rt, pat, 0.1); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestDuatoNeedsTwoVCs(t *testing.T) {
	if _, err := NewDuatoUpDown(torusGraph(t), 1); err == nil {
		t.Fatal("1 VC accepted for adaptive routing")
	}
}

// Zero-load latency must match the analytic pipeline model:
// (hops+1)*(1 + linkDelay + pipeline) + packet + linkDelay cycles for a
// packet crossing hops switch-to-switch links.
func TestZeroLoadLatencyFormula(t *testing.T) {
	cfg := shortCfg()
	cfg.Seed = 7
	g := torusGraph(t)
	res := runSim(t, cfg, g, 0.005) // well below saturation
	if res.Saturated {
		t.Fatal("saturated at near-zero load")
	}
	if res.DeliveredMeasured == 0 {
		t.Fatal("nothing delivered")
	}
	// 8x8 torus ASPL is about 4.06; expected latency in cycles:
	perHop := float64(1 + cfg.LinkDelayCycles + cfg.PipelineCycles)
	wantCycles := (4.06+1)*perHop + float64(cfg.PacketFlits) + float64(cfg.LinkDelayCycles)
	wantNS := wantCycles * cfg.CycleNS()
	if math.Abs(res.AvgLatencyNS-wantNS) > 0.08*wantNS {
		t.Fatalf("zero-load latency %.0f ns, want about %.0f ns", res.AvgLatencyNS, wantNS)
	}
}

func TestConservation(t *testing.T) {
	cfg := shortCfg()
	g := torusGraph(t)
	res := runSim(t, cfg, g, 0.2)
	if res.GeneratedTotal != res.DeliveredTotal+res.InFlightAtEnd {
		t.Fatalf("conservation violated: gen=%d del=%d inflight=%d",
			res.GeneratedTotal, res.DeliveredTotal, res.InFlightAtEnd)
	}
	if res.DeliveredMeasured > res.GeneratedMeasured {
		t.Fatalf("delivered %d > generated %d in window", res.DeliveredMeasured, res.GeneratedMeasured)
	}
}

func TestDeterminism(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("three full runs in -race mode; determinism is race-insensitive")
	}
	cfg := shortCfg()
	g := torusGraph(t)
	a := runSim(t, cfg, g, 0.3)
	b := runSim(t, cfg, g, 0.3)
	if a.AvgLatencyNS != b.AvgLatencyNS || a.DeliveredTotal != b.DeliveredTotal {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	cfg.Seed = 99
	c := runSim(t, cfg, g, 0.3)
	if c.DeliveredTotal == a.DeliveredTotal && c.AvgLatencyNS == a.AvgLatencyNS {
		t.Fatal("different seeds produced identical results")
	}
}

func TestLatencyRisesWithLoad(t *testing.T) {
	cfg := shortCfg()
	g := torusGraph(t)
	low := runSim(t, cfg, g, 0.02)
	// 0.16 flits/cycle/host is busy but below the 8x8 torus saturation
	// point; past saturation the accepted traffic no longer rises.
	high := runSim(t, cfg, g, 0.16)
	if low.Saturated {
		t.Fatal("saturated at 2% load")
	}
	if high.AvgLatencyNS <= low.AvgLatencyNS {
		t.Fatalf("latency did not rise with load: %.0f -> %.0f", low.AvgLatencyNS, high.AvgLatencyNS)
	}
	if high.AcceptedGbps <= low.AcceptedGbps {
		t.Fatalf("accepted traffic did not rise: %.2f -> %.2f", low.AcceptedGbps, high.AcceptedGbps)
	}
}

func TestSaturationDetected(t *testing.T) {
	cfg := shortCfg()
	g := torusGraph(t)
	res := runSim(t, cfg, g, 0.95)
	if !res.Saturated {
		t.Fatalf("95%% injection on a 4-ary torus with 4 hosts/switch must saturate: %v", res)
	}
	// Accepted must stay below offered at saturation.
	if res.AcceptedGbps >= res.OfferedGbps {
		t.Fatalf("accepted %.2f >= offered %.2f at saturation", res.AcceptedGbps, res.OfferedGbps)
	}
}

func TestAcceptedMatchesOfferedBelowSaturation(t *testing.T) {
	cfg := shortCfg()
	g := torusGraph(t)
	res := runSim(t, cfg, g, 0.1)
	if res.Saturated {
		t.Fatal("saturated at 10% load")
	}
	if math.Abs(res.AcceptedGbps-res.OfferedGbps) > 0.15*res.OfferedGbps {
		t.Fatalf("accepted %.2f Gbps far from offered %.2f Gbps below saturation",
			res.AcceptedGbps, res.OfferedGbps)
	}
}

// The headline simulation result (Figure 10a): DSN has lower latency than
// the torus at low load under uniform traffic, because its average
// shortest path (3.2) beats the torus (4.1).
func TestDSNBeatsTorusLatency(t *testing.T) {
	cfg := shortCfg()
	d := dsnGraph(t)
	torus := torusGraph(t)
	dsnRes := runSim(t, cfg, d.Graph(), 0.05)
	torRes := runSim(t, cfg, torus, 0.05)
	if dsnRes.Saturated || torRes.Saturated {
		t.Fatal("saturated at 5% load")
	}
	if dsnRes.AvgLatencyNS >= torRes.AvgLatencyNS {
		t.Fatalf("DSN latency %.0f ns not below torus %.0f ns", dsnRes.AvgLatencyNS, torRes.AvgLatencyNS)
	}
	improvement := 1 - dsnRes.AvgLatencyNS/torRes.AvgLatencyNS
	if improvement < 0.05 || improvement > 0.35 {
		t.Fatalf("improvement %.0f%% outside the plausible band around the paper's 15%%", improvement*100)
	}
}

func TestChannelFlitsAccounted(t *testing.T) {
	cfg := shortCfg()
	g := torusGraph(t)
	res := runSim(t, cfg, g, 0.2)
	var total int64
	for _, f := range res.ChannelFlits {
		if f < 0 {
			t.Fatal("negative channel flits")
		}
		total += f
	}
	if total == 0 {
		t.Fatal("no inter-switch flits recorded")
	}
	// Each delivered packet crosses at least one inter-switch link on
	// average under uniform traffic at 64 switches.
	if total < res.DeliveredMeasured*int64(cfg.PacketFlits)/2 {
		t.Fatalf("channel flits %d implausibly low", total)
	}
}

func TestResultString(t *testing.T) {
	r := Result{OfferedGbps: 1, AcceptedGbps: 0.9, AvgLatencyNS: 500, P99LatencyNS: 900}
	if r.String() == "" {
		t.Fatal("empty summary")
	}
	r.Saturated = true
	if r.String() == "" {
		t.Fatal("empty summary")
	}
}

// Source-routed DSN custom routing drives the simulator without deadlock
// or stalls and delivers everything at moderate load.
func TestDSNSourceRoutedSim(t *testing.T) {
	d, err := core.NewV(60)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewDSNSourceRouted(d)
	if err != nil {
		t.Fatal(err)
	}
	cfg := shortCfg()
	// The custom routing's average path (about 2p hops) is much longer
	// than the adaptive shortest paths, so its capacity is lower: drive it
	// well below that point.
	pat := traffic.Uniform{Hosts: d.N * cfg.HostsPerSwitch}
	s, err := NewSim(cfg, d.Graph(), rt, pat, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturated {
		t.Fatalf("custom routing saturated at 1%% load: %v", res)
	}
	if res.DeliveredMeasured == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestDSNSourceRoutedRequiresVariant(t *testing.T) {
	d, err := core.New(64, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDSNSourceRouted(d); err == nil {
		t.Fatal("basic variant accepted for source-routed simulation")
	}
}

// Property test: random connected degree-4 topologies at modest load must
// deliver traffic without deadlock, and conservation must hold, for both
// switching engines.
func TestQuickRandomTopologies(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		g, err := topology.DLNRandom(32, 2, 2, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Connected() {
			continue
		}
		cfg := Default()
		cfg.Seed = seed
		cfg.WarmupCycles = 1000
		cfg.MeasureCycles = 2500
		cfg.DrainCycles = 4000
		rt, err := NewDuatoUpDown(g, cfg.VCs)
		if err != nil {
			t.Fatal(err)
		}
		pat := traffic.Uniform{Hosts: g.N() * cfg.HostsPerSwitch}
		sim, err := NewSim(cfg, g, rt, pat, 0.06)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.DeliveredMeasured == 0 {
			t.Fatalf("seed %d: VCT delivered nothing", seed)
		}
		if res.GeneratedTotal != res.DeliveredTotal+res.InFlightAtEnd {
			t.Fatalf("seed %d: VCT conservation violated", seed)
		}
		wcfg := cfg
		wcfg.BufFlitsPerVC = 20
		worm, err := NewWormSim(wcfg, g, rt, pat, 0.06)
		if err != nil {
			t.Fatal(err)
		}
		wres, err := worm.Run()
		if err != nil {
			t.Fatalf("seed %d: wormhole: %v", seed, err)
		}
		if wres.DeliveredMeasured == 0 {
			t.Fatalf("seed %d: wormhole delivered nothing", seed)
		}
		if wres.GeneratedTotal != wres.DeliveredTotal+wres.InFlightAtEnd {
			t.Fatalf("seed %d: wormhole conservation violated", seed)
		}
	}
}

// DSN-E has parallel physical links (Up and Extra duplicate ring links);
// the simulator must treat them as independent channels. This exercises
// findOutChan's parallel-edge handling under adaptive routing.
func TestSimOnDSNEParallelLinks(t *testing.T) {
	d, err := core.NewE(60)
	if err != nil {
		t.Fatal(err)
	}
	cfg := shortCfg()
	res := runSim(t, cfg, d.Graph(), 0.08)
	if res.DeliveredMeasured == 0 {
		t.Fatal("nothing delivered on DSN-E")
	}
	if res.Saturated {
		t.Fatalf("DSN-E saturated at 8%% load: %v", res)
	}
	// The extra links add path diversity: DSN-E should be at least as
	// fast as the plain DSN-V wiring at the same load.
	v, err := core.NewV(60)
	if err != nil {
		t.Fatal(err)
	}
	vres := runSim(t, cfg, v.Graph(), 0.08)
	if res.AvgLatencyNS > vres.AvgLatencyNS*1.05 {
		t.Fatalf("DSN-E latency %.0f ns above DSN-V %.0f ns despite extra links",
			res.AvgLatencyNS, vres.AvgLatencyNS)
	}
}

// The measured average hop count must track the topology's ASPL at low
// load (adaptive routing is minimal below saturation).
func TestAvgHopsMatchesASPL(t *testing.T) {
	cfg := shortCfg()
	g := torusGraph(t)
	res := runSim(t, cfg, g, 0.02)
	// 8x8 torus ASPL is about 4.06 between switches; host pairs on the
	// same switch contribute zero-hop packets, scaling by (1 - 4/256).
	want := 4.06 * (1 - 4.0/256)
	if math.Abs(res.AvgHops-want) > 0.15 {
		t.Fatalf("avg hops %.2f, want about %.2f", res.AvgHops, want)
	}
}

// Integration: a 256-switch DSN simulation completes and shows the same
// qualitative behavior as the 64-switch configuration.
func TestLargeScaleDSNSim(t *testing.T) {
	if testing.Short() {
		t.Skip("256-switch simulation in -short mode")
	}
	d, err := core.New(256, core.CeilLog2(256)-1)
	if err != nil {
		t.Fatal(err)
	}
	tor, err := topology.Torus2D(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default()
	cfg.WarmupCycles = 2000
	cfg.MeasureCycles = 4000
	cfg.DrainCycles = 6000
	dsnRes := runSim(t, cfg, d.Graph(), 0.04)
	torRes := runSim(t, cfg, tor.Graph(), 0.04)
	if dsnRes.Saturated || torRes.Saturated {
		t.Fatalf("saturated at 4%% load at 256 switches")
	}
	// The path-length advantage grows with scale: at 256 switches the
	// DSN/torus ASPL ratio (5.47 vs 8.03) should yield a bigger latency
	// cut than at 64.
	improvement := 1 - dsnRes.AvgLatencyNS/torRes.AvgLatencyNS
	if improvement < 0.15 {
		t.Fatalf("DSN latency improvement at 256 switches only %.0f%%", improvement*100)
	}
	if dsnRes.AvgHops >= torRes.AvgHops {
		t.Fatalf("DSN hops %.2f not below torus %.2f", dsnRes.AvgHops, torRes.AvgHops)
	}
}

// The empirical counterpart of the CDG analysis: the basic DSN's custom
// routing (phases sharing ring channels) genuinely deadlocks under load,
// while the same traffic on the Section V.A channel classes keeps
// flowing. This is the paper's motivation for DSN-E/DSN-V, observed live.
func TestBasicCustomRoutingDeadlocks(t *testing.T) {
	if testing.Short() || raceDetectorEnabled {
		t.Skip("deadlock formation run in -short or -race mode")
	}
	basic, err := core.New(36, core.CeilLog2(36)-1)
	if err != nil {
		t.Fatal(err)
	}
	unsafeRt, err := NewDSNSourceRoutedUnsafe(basic)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default()
	cfg.WarmupCycles = 5000
	cfg.MeasureCycles = 10000
	cfg.DrainCycles = 400000
	cfg.WatchdogCycles = 60000 // tighter than the default: fail fast
	pat := traffic.Uniform{Hosts: 36 * cfg.HostsPerSwitch}
	sim, err := NewSim(cfg, basic.Graph(), unsafeRt, pat, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	_, runErr := sim.Run()
	if runErr == nil {
		t.Fatal("basic-variant custom routing survived heavy load; expected a deadlock watchdog trip")
	}
	if !errors.Is(runErr, ErrNoProgress) {
		t.Fatalf("deadlock error is not ErrNoProgress: %v", runErr)
	}
	var np *NoProgressError
	if !errors.As(runErr, &np) {
		t.Fatalf("deadlock error is not a *NoProgressError: %v", runErr)
	}
	if np.WatchdogCycles != cfg.WatchdogCycles {
		t.Fatalf("NoProgressError reports deadline %d, configured %d", np.WatchdogCycles, cfg.WatchdogCycles)
	}
	if np.InFlight <= 0 {
		t.Fatalf("deadlocked run reports %d packets in flight", np.InFlight)
	}
	if mon, ok := ViolatedMonitor(runErr); !ok || mon != MonitorWatchdog {
		t.Fatalf("ViolatedMonitor(%v) = %q, %v; want %q", runErr, mon, ok, MonitorWatchdog)
	}

	// Same wiring, same load, Section V.A channels: saturated but alive.
	safe, err := core.NewV(36)
	if err != nil {
		t.Fatal(err)
	}
	safeRt, err := NewDSNSourceRouted(safe)
	if err != nil {
		t.Fatal(err)
	}
	sim2, err := NewSim(cfg, safe.Graph(), safeRt, pat, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim2.Run()
	if err != nil {
		t.Fatalf("deadlock-free channel classes still deadlocked: %v", err)
	}
	if res.DeliveredTotal == 0 {
		t.Fatal("nothing delivered")
	}
}

// The escape-patience policy keeps escape usage negligible below
// saturation and lets it grow under pressure.
func TestEscapeFraction(t *testing.T) {
	cfg := shortCfg()
	g := torusGraph(t)
	low := runSim(t, cfg, g, 0.03)
	if low.EscapeFraction > 0.02 {
		t.Fatalf("escape fraction %.3f at 3%% load", low.EscapeFraction)
	}
	high := runSim(t, cfg, g, 0.25)
	if high.EscapeFraction <= low.EscapeFraction {
		t.Fatalf("escape fraction did not grow: %.4f -> %.4f", low.EscapeFraction, high.EscapeFraction)
	}
}

// DSN-E custom routing must ride its dedicated physical Up and Extra
// links: with edge pinning, flits appear on those channels.
func TestDSNECustomRoutingUsesDedicatedLinks(t *testing.T) {
	d, err := core.NewE(60)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewDSNSourceRouted(d)
	if err != nil {
		t.Fatal(err)
	}
	cfg := shortCfg()
	pat := traffic.Uniform{Hosts: d.N * cfg.HostsPerSwitch}
	sim, err := NewSim(cfg, d.Graph(), rt, pat, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturated || res.DeliveredMeasured == 0 {
		t.Fatalf("DSN-E custom routing: %v", res)
	}
	g := d.Graph()
	var upFlits, extraFlits int64
	for ei, e := range g.Edges() {
		flits := res.ChannelFlits[2*ei] + res.ChannelFlits[2*ei+1]
		switch e.Kind {
		case graph.KindUp:
			upFlits += flits
		case graph.KindExtra:
			extraFlits += flits
		}
	}
	if upFlits == 0 {
		t.Fatal("no flits on dedicated Up links")
	}
	if extraFlits == 0 {
		t.Fatal("no flits on dedicated Extra links")
	}
}

// The packet trace records a coherent lifecycle: GEN, INJECT, zero or
// more GRANTs, EJECT, DELIVER, in that order, without changing results.
func TestPacketTrace(t *testing.T) {
	g := torusGraph(t)
	cfg := shortCfg()
	cfg.TracePackets = 5
	var buf strings.Builder
	cfg.Trace = &buf
	traced := runSim(t, cfg, g, 0.02)

	plain := shortCfg()
	untraced := runSim(t, plain, g, 0.02)
	if traced.AvgLatencyNS != untraced.AvgLatencyNS {
		t.Fatalf("tracing changed the simulation: %v vs %v", traced.AvgLatencyNS, untraced.AvgLatencyNS)
	}

	out := buf.String()
	for _, ev := range []string{"GEN", "INJECT", "EJECT", "DELIVER"} {
		if !strings.Contains(out, ev) {
			t.Fatalf("trace missing %s events:\n%s", ev, out)
		}
	}
	// Per-packet ordering for packet 0.
	order := []string{}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "pkt=0 ") {
			fields := strings.Fields(line)
			order = append(order, fields[2])
		}
	}
	if len(order) < 4 || order[0] != "GEN" || order[len(order)-1] != "DELIVER" {
		t.Fatalf("packet 0 lifecycle %v", order)
	}
	if strings.Contains(out, "pkt=7 ") {
		t.Fatal("trace exceeded its packet budget")
	}
}
