package collectives

import "dsnet/internal/netsim"

// ToReplay converts a collective DAG into the closed-loop workload the
// simulators execute (netsim.SetReplay). The conversion is 1:1 — message
// IDs are positional in both representations, so dependency indices
// carry over unchanged.
func ToReplay(d *DAG) *netsim.Replay {
	r := &netsim.Replay{
		Name:     d.Name(),
		Phases:   append([]string(nil), d.PhaseNames...),
		Messages: make([]netsim.ReplayMessage, len(d.Messages)),
	}
	for i, m := range d.Messages {
		r.Messages[i] = netsim.ReplayMessage{
			SrcHost: m.Src,
			DstHost: m.Dst,
			Flits:   m.Flits,
			Deps:    append([]int32(nil), m.Deps...),
			Phase:   m.Phase,
		}
	}
	return r
}
