package collectives

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// messageCount returns the closed-form message count of each workload.
func messageCount(collective, algo string, k int) int {
	q := 0
	for 1<<q < k {
		q++
	}
	switch collective + "/" + algo {
	case "allreduce/ring":
		return 2 * (k - 1) * k
	case "allreduce/halving-doubling":
		return 2 * k * q
	case "allgather/ring", "all-to-all/pairwise":
		return (k - 1) * k
	case "broadcast/binomial", "reduce/binomial":
		return k - 1
	}
	return -1
}

// workloads enumerates every (collective, algo) pair, with the host
// constraint halving-doubling imposes.
var workloads = []struct {
	collective, algo string
	pow2Only         bool
}{
	{"allreduce", "ring", false},
	{"allreduce", "halving-doubling", true},
	{"allgather", "ring", false},
	{"broadcast", "binomial", false},
	{"reduce", "binomial", false},
	{"all-to-all", "pairwise", false},
}

// hostsFor maps an arbitrary quick-generated value to a valid host count.
func hostsFor(raw uint16, pow2Only bool) int {
	if pow2Only {
		return 2 << (raw % 6) // 2..64
	}
	return 2 + int(raw%63) // 2..64
}

func TestGeneratorsValidAndCounted(t *testing.T) {
	for _, w := range workloads {
		prop := func(raw uint16, chunkRaw uint8) bool {
			hosts := hostsFor(raw, w.pow2Only)
			chunk := 1 + int(chunkRaw%64)
			d, err := Generate(w.collective, w.algo, hosts, chunk)
			if err != nil {
				t.Logf("%s/%s hosts=%d: %v", w.collective, w.algo, hosts, err)
				return false
			}
			if err := d.Validate(); err != nil {
				t.Logf("%s/%s hosts=%d: %v", w.collective, w.algo, hosts, err)
				return false
			}
			if len(d.Messages) != messageCount(w.collective, w.algo, hosts) {
				t.Logf("%s/%s hosts=%d: %d messages, want %d",
					w.collective, w.algo, hosts, len(d.Messages), messageCount(w.collective, w.algo, hosts))
				return false
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("%s/%s: %v", w.collective, w.algo, err)
		}
	}
}

// Every host of a symmetric collective both sends and receives; for the
// rooted trees every non-root receives (broadcast) or sends (reduce) and
// the root does the converse.
func TestEveryHostParticipates(t *testing.T) {
	for _, w := range workloads {
		prop := func(raw uint16) bool {
			hosts := hostsFor(raw, w.pow2Only)
			d, err := Generate(w.collective, w.algo, hosts, 4)
			if err != nil {
				return false
			}
			sends := make([]bool, hosts)
			recvs := make([]bool, hosts)
			for _, m := range d.Messages {
				sends[m.Src] = true
				recvs[m.Dst] = true
			}
			for h := 0; h < hosts; h++ {
				wantSend, wantRecv := true, true
				switch w.collective {
				case "broadcast":
					// Under a full binomial tree every internal host
					// forwards; only the last-round leaves never send.
					wantSend = sends[h]
					wantRecv = h != 0
				case "reduce":
					wantSend = h != 0
					wantRecv = recvs[h]
				}
				if sends[h] != wantSend || recvs[h] != wantRecv {
					t.Logf("%s/%s hosts=%d: host %d sends=%v recvs=%v",
						w.collective, w.algo, hosts, h, sends[h], recvs[h])
					return false
				}
			}
			// The roots participate on the complementary side.
			if w.collective == "broadcast" && !sends[0] {
				return false
			}
			if w.collective == "reduce" && !recvs[0] {
				return false
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
			t.Errorf("%s/%s: %v", w.collective, w.algo, err)
		}
	}
}

// Generation is a pure function of its arguments, and rank placement is a
// pure function of the permutation seed.
func TestGenerationBitIdentical(t *testing.T) {
	for _, w := range workloads {
		a, err := Generate(w.collective, w.algo, 16, 8)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := Generate(w.collective, w.algo, 16, 8)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s/%s: generation not deterministic", w.collective, w.algo)
		}
		pa := a.Permuted(42)
		pb := b.Permuted(42)
		if !reflect.DeepEqual(pa, pb) {
			t.Errorf("%s/%s: Permuted(42) not deterministic", w.collective, w.algo)
		}
		if err := pa.Validate(); err != nil {
			t.Errorf("%s/%s permuted: %v", w.collective, w.algo, err)
		}
		if reflect.DeepEqual(a.Messages, a.Permuted(7).Messages) {
			t.Errorf("%s/%s: Permuted(7) left endpoints unchanged", w.collective, w.algo)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s/%s: Permuted mutated its receiver", w.collective, w.algo)
		}
	}
}

func TestPermutedPreservesStructure(t *testing.T) {
	d, err := RingAllReduce(12, 5)
	if err != nil {
		t.Fatal(err)
	}
	p := d.Permuted(3)
	if p.TotalFlits() != d.TotalFlits() {
		t.Fatalf("permutation changed total flits: %d vs %d", p.TotalFlits(), d.TotalFlits())
	}
	for i := range d.Messages {
		if !reflect.DeepEqual(p.Messages[i].Deps, d.Messages[i].Deps) ||
			p.Messages[i].Flits != d.Messages[i].Flits ||
			p.Messages[i].Phase != d.Messages[i].Phase {
			t.Fatalf("permutation changed structure of message %d", i)
		}
	}
}

func TestGenerateRejectsBadArgs(t *testing.T) {
	cases := []struct {
		collective, algo string
		hosts, chunk     int
	}{
		{"allreduce", "ring", 1, 4},
		{"allreduce", "ring", 8, 0},
		{"allreduce", "halving-doubling", 12, 4}, // not a power of two
		{"nonsense", "", 8, 4},
		{"allreduce", "nonsense", 8, 4},
	}
	for _, c := range cases {
		if _, err := Generate(c.collective, c.algo, c.hosts, c.chunk); err == nil {
			t.Errorf("Generate(%q, %q, %d, %d) accepted", c.collective, c.algo, c.hosts, c.chunk)
		}
	}
}

func TestDefaultAlgoCoversCollectives(t *testing.T) {
	for _, c := range Collectives {
		if DefaultAlgo(c) == "" {
			t.Errorf("no default algorithm for %q", c)
		}
		if _, err := Generate(c, "", 8, 4); err != nil {
			t.Errorf("Generate(%q, default): %v", c, err)
		}
	}
}

func TestValidateCatchesCycle(t *testing.T) {
	d, err := RingAllGather(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	d.Messages[0].Deps = []int32{int32(len(d.Messages) - 1)}
	d.Messages[len(d.Messages)-1].Deps = []int32{0}
	if err := d.Validate(); err == nil {
		t.Fatal("cyclic DAG accepted")
	}
}

// ToReplay is positional: the bridge must preserve indices so dependency
// edges survive the translation.
func TestToReplayPositional(t *testing.T) {
	d, err := PairwiseAllToAll(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := ToReplay(d)
	if len(r.Messages) != len(d.Messages) {
		t.Fatalf("%d replay messages, want %d", len(r.Messages), len(d.Messages))
	}
	if err := r.Validate(6); err != nil {
		t.Fatal(err)
	}
	i := rand.New(rand.NewSource(1)).Intn(len(d.Messages))
	if r.Messages[i].SrcHost != d.Messages[i].Src || r.Messages[i].DstHost != d.Messages[i].Dst ||
		r.Messages[i].Flits != d.Messages[i].Flits || r.Messages[i].Phase != d.Messages[i].Phase ||
		!reflect.DeepEqual(r.Messages[i].Deps, d.Messages[i].Deps) {
		t.Fatalf("message %d not preserved: %+v vs %+v", i, r.Messages[i], d.Messages[i])
	}
}
