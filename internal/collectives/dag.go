// Package collectives models HPC collective-communication workloads as
// deterministic message DAGs and generates the classic algorithms (ring
// and recursive-halving/doubling allreduce, binomial-tree broadcast and
// reduce, ring allgather, pairwise-exchange all-to-all) over the
// simulator's host space.
//
// A DAG is a closed-loop workload: each message may inject only after
// every message it depends on has been *delivered*, so the cost of the
// workload is a dependency-ordered makespan rather than the steady-state
// latency of the open-loop traffic patterns in internal/traffic. The
// closed-loop replay engine in internal/netsim (SetReplay) executes a
// DAG cycle-accurately and reports the makespan with a per-phase
// breakdown.
package collectives

import (
	"fmt"
	"math/rand/v2"
)

// Message is one point-to-point transfer of a collective: Src sends
// Flits flits to Dst once every message in Deps has been delivered.
type Message struct {
	ID    int32
	Src   int32 // source host
	Dst   int32 // destination host
	Flits int32 // payload size in flits
	// Deps lists the IDs of messages that must be fully delivered before
	// this one may inject at Src. Generators emit messages in a
	// topological order (every dependency has a smaller ID).
	Deps []int32
	// Phase indexes DAG.PhaseNames: the algorithm stage this message
	// belongs to (e.g. reduce-scatter vs allgather), driving the
	// per-phase makespan breakdown.
	Phase int32
}

// DAG is a complete collective workload over Hosts hosts.
type DAG struct {
	Collective string // "allreduce", "allgather", "broadcast", "reduce", "all-to-all"
	Algo       string // "ring", "halving-doubling", "binomial", "pairwise"
	Hosts      int
	ChunkFlits int // the generator's base chunk size
	PhaseNames []string
	Messages   []Message
}

// Name identifies the workload in reports.
func (d *DAG) Name() string { return d.Collective + "/" + d.Algo }

// Validate checks message well-formedness and that the dependency graph
// is acyclic (Kahn's algorithm), so a replay can always make progress.
func (d *DAG) Validate() error {
	if d.Hosts < 2 {
		return fmt.Errorf("collectives: %s over %d hosts (need >= 2)", d.Name(), d.Hosts)
	}
	n := len(d.Messages)
	indeg := make([]int, n)
	dependents := make([][]int32, n)
	for i, m := range d.Messages {
		if int(m.ID) != i {
			return fmt.Errorf("collectives: message %d has ID %d", i, m.ID)
		}
		if m.Src < 0 || int(m.Src) >= d.Hosts || m.Dst < 0 || int(m.Dst) >= d.Hosts {
			return fmt.Errorf("collectives: message %d endpoints (%d -> %d) outside [0,%d)", i, m.Src, m.Dst, d.Hosts)
		}
		if m.Src == m.Dst {
			return fmt.Errorf("collectives: message %d sends host %d to itself", i, m.Src)
		}
		if m.Flits < 1 {
			return fmt.Errorf("collectives: message %d has %d flits", i, m.Flits)
		}
		if m.Phase < 0 || int(m.Phase) >= len(d.PhaseNames) {
			return fmt.Errorf("collectives: message %d phase %d outside [0,%d)", i, m.Phase, len(d.PhaseNames))
		}
		for _, dep := range m.Deps {
			if dep < 0 || int(dep) >= n {
				return fmt.Errorf("collectives: message %d depends on unknown message %d", i, dep)
			}
			indeg[i]++
			dependents[dep] = append(dependents[dep], int32(i))
		}
	}
	ready := make([]int32, 0, n)
	for i, deg := range indeg {
		if deg == 0 {
			ready = append(ready, int32(i))
		}
	}
	seen := 0
	for len(ready) > 0 {
		m := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		seen++
		for _, dep := range dependents[m] {
			indeg[dep]--
			if indeg[dep] == 0 {
				ready = append(ready, dep)
			}
		}
	}
	if seen != n {
		return fmt.Errorf("collectives: %s dependency graph has a cycle (%d of %d messages reachable)", d.Name(), seen, n)
	}
	return nil
}

// Permuted returns a copy of the DAG with collective ranks mapped onto
// physical hosts by a seeded random permutation. The DAG structure
// (dependencies, sizes, phases) is untouched; only endpoint labels
// change. This is the placement-randomization knob: repetitions across
// seeds measure how sensitive a topology's makespan is to where the job's
// ranks land. The permutation is a deterministic function of the seed.
func (d *DAG) Permuted(seed uint64) *DAG {
	rng := rand.New(rand.NewPCG(seed, 0xc011ec7))
	perm := make([]int32, d.Hosts)
	for i := range perm {
		perm[i] = int32(i)
	}
	for i := d.Hosts - 1; i > 0; i-- {
		j := rng.IntN(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	out := *d
	out.PhaseNames = append([]string(nil), d.PhaseNames...)
	out.Messages = make([]Message, len(d.Messages))
	for i, m := range d.Messages {
		m.Deps = append([]int32(nil), m.Deps...)
		m.Src = perm[m.Src]
		m.Dst = perm[m.Dst]
		out.Messages[i] = m
	}
	return &out
}

// TotalFlits sums the payload of every message.
func (d *DAG) TotalFlits() int64 {
	var t int64
	for _, m := range d.Messages {
		t += int64(m.Flits)
	}
	return t
}
