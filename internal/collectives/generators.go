package collectives

import (
	"fmt"
	"math/bits"
)

// The generators below model the logical vector of a collective as
// Hosts x chunkFlits flits: every host contributes (or receives) one
// chunk of chunkFlits flits. Ring algorithms move one chunk per message,
// recursive halving/doubling moves power-of-two windows of the vector,
// and tree broadcast/reduce move the whole vector per hop. Dependencies
// are exactly the data dependencies of the algorithm: a host may send a
// block only after the message that delivered (the inputs of) that block
// to it.

// RingAllReduce generates the classic two-stage ring allreduce over k
// hosts: k-1 reduce-scatter steps followed by k-1 allgather steps, each
// step sending one chunk from every host to its ring successor, for
// 2(k-1)k messages total. Step s of host i depends on the message host i
// received in step s-1 (the chunk it forwards next).
func RingAllReduce(hosts, chunkFlits int) (*DAG, error) {
	if err := checkArgs("allreduce/ring", hosts, chunkFlits); err != nil {
		return nil, err
	}
	k := hosts
	d := &DAG{
		Collective: "allreduce", Algo: "ring",
		Hosts: hosts, ChunkFlits: chunkFlits,
		PhaseNames: []string{"reduce-scatter", "allgather"},
		Messages:   make([]Message, 0, 2*(k-1)*k),
	}
	rs := func(s, i int) int32 { return int32(s*k + i) }
	ag := func(s, i int) int32 { return int32(k*(k-1) + s*k + i) }
	for s := 0; s < k-1; s++ {
		for i := 0; i < k; i++ {
			m := Message{
				ID: rs(s, i), Src: int32(i), Dst: int32((i + 1) % k),
				Flits: int32(chunkFlits), Phase: 0,
			}
			if s > 0 {
				m.Deps = []int32{rs(s-1, (i-1+k)%k)}
			}
			d.Messages = append(d.Messages, m)
		}
	}
	for s := 0; s < k-1; s++ {
		for i := 0; i < k; i++ {
			m := Message{
				ID: ag(s, i), Src: int32(i), Dst: int32((i + 1) % k),
				Flits: int32(chunkFlits), Phase: 1,
			}
			if s == 0 {
				// The fully reduced chunk host i opens the allgather with
				// arrived in the last reduce-scatter step.
				m.Deps = []int32{rs(k-2, (i-1+k)%k)}
			} else {
				m.Deps = []int32{ag(s-1, (i-1+k)%k)}
			}
			d.Messages = append(d.Messages, m)
		}
	}
	return d, nil
}

// HalvingDoublingAllReduce generates the recursive-halving
// reduce-scatter followed by recursive-doubling allgather over a
// power-of-two host count: 2·log2(k) rounds in which every host
// exchanges with a partner at XOR distance, halving (then doubling) the
// moved window each round, for 2·k·log2(k) messages total.
func HalvingDoublingAllReduce(hosts, chunkFlits int) (*DAG, error) {
	if err := checkArgs("allreduce/halving-doubling", hosts, chunkFlits); err != nil {
		return nil, err
	}
	if hosts&(hosts-1) != 0 {
		return nil, fmt.Errorf("collectives: halving-doubling needs a power-of-two host count, got %d", hosts)
	}
	k := hosts
	q := bits.TrailingZeros(uint(k))
	vector := k * chunkFlits
	d := &DAG{
		Collective: "allreduce", Algo: "halving-doubling",
		Hosts: hosts, ChunkFlits: chunkFlits,
		PhaseNames: []string{"reduce-scatter", "allgather"},
		Messages:   make([]Message, 0, 2*k*q),
	}
	hd := func(r, i int) int32 { return int32(r*k + i) }
	ag := func(r, i int) int32 { return int32(q*k + r*k + i) }
	for r := 0; r < q; r++ {
		dist := 1 << (q - 1 - r)
		for i := 0; i < k; i++ {
			m := Message{
				ID: hd(r, i), Src: int32(i), Dst: int32(i ^ dist),
				Flits: int32(vector >> (r + 1)), Phase: 0,
			}
			if r > 0 {
				// The window host i halves this round was reduced with the
				// data its previous partner sent it.
				m.Deps = []int32{hd(r-1, i^(dist<<1))}
			}
			d.Messages = append(d.Messages, m)
		}
	}
	for r := 0; r < q; r++ {
		dist := 1 << r
		for i := 0; i < k; i++ {
			m := Message{
				ID: ag(r, i), Src: int32(i), Dst: int32(i ^ dist),
				Flits: int32(vector >> (q - r)), Phase: 1,
			}
			if r == 0 {
				m.Deps = []int32{hd(q-1, i^1)}
			} else {
				m.Deps = []int32{ag(r-1, i^(dist>>1))}
			}
			d.Messages = append(d.Messages, m)
		}
	}
	return d, nil
}

// BinomialBroadcast generates the binomial-tree broadcast from root:
// ceil(log2(k)) rounds in which every host that already holds the vector
// sends it to one new host, for k-1 messages total, each carrying the
// whole k·chunkFlits vector.
func BinomialBroadcast(hosts, chunkFlits, root int) (*DAG, error) {
	if err := checkArgs("broadcast/binomial", hosts, chunkFlits); err != nil {
		return nil, err
	}
	if root < 0 || root >= hosts {
		return nil, fmt.Errorf("collectives: broadcast root %d outside [0,%d)", root, hosts)
	}
	k := hosts
	d := &DAG{
		Collective: "broadcast", Algo: "binomial",
		Hosts: hosts, ChunkFlits: chunkFlits,
		PhaseNames: []string{"broadcast"},
		Messages:   make([]Message, 0, k-1),
	}
	abs := func(rel int) int32 { return int32((root + rel) % k) }
	recv := make([]int32, k) // message that delivered the vector to rel j
	for j := range recv {
		recv[j] = -1
	}
	for r := 0; 1<<r < k; r++ {
		for j := 0; j < 1<<r && j+(1<<r) < k; j++ {
			m := Message{
				ID: int32(len(d.Messages)), Src: abs(j), Dst: abs(j + (1 << r)),
				Flits: int32(k * chunkFlits), Phase: 0,
			}
			if recv[j] >= 0 {
				m.Deps = []int32{recv[j]}
			}
			recv[j+(1<<r)] = m.ID
			d.Messages = append(d.Messages, m)
		}
	}
	return d, nil
}

// BinomialReduce generates the mirror of BinomialBroadcast: the same
// k-1 edges walked leafward-first, each sender waiting for every
// contribution it must fold in before passing its partial sum up.
func BinomialReduce(hosts, chunkFlits, root int) (*DAG, error) {
	if err := checkArgs("reduce/binomial", hosts, chunkFlits); err != nil {
		return nil, err
	}
	if root < 0 || root >= hosts {
		return nil, fmt.Errorf("collectives: reduce root %d outside [0,%d)", root, hosts)
	}
	k := hosts
	d := &DAG{
		Collective: "reduce", Algo: "binomial",
		Hosts: hosts, ChunkFlits: chunkFlits,
		PhaseNames: []string{"reduce"},
		Messages:   make([]Message, 0, k-1),
	}
	abs := func(rel int) int32 { return int32((root + rel) % k) }
	rounds := 0
	for 1<<rounds < k {
		rounds++
	}
	recvs := make([][]int32, k) // messages already folded into rel j
	for r := rounds - 1; r >= 0; r-- {
		for j := 0; j < 1<<r && j+(1<<r) < k; j++ {
			src := j + (1 << r)
			m := Message{
				ID: int32(len(d.Messages)), Src: abs(src), Dst: abs(j),
				Flits: int32(k * chunkFlits), Phase: 0,
				Deps: append([]int32(nil), recvs[src]...),
			}
			recvs[j] = append(recvs[j], m.ID)
			d.Messages = append(d.Messages, m)
		}
	}
	return d, nil
}

// RingAllGather generates the k-1 step ring allgather: every host
// forwards the newest chunk it holds to its successor, for (k-1)k
// messages total.
func RingAllGather(hosts, chunkFlits int) (*DAG, error) {
	if err := checkArgs("allgather/ring", hosts, chunkFlits); err != nil {
		return nil, err
	}
	k := hosts
	d := &DAG{
		Collective: "allgather", Algo: "ring",
		Hosts: hosts, ChunkFlits: chunkFlits,
		PhaseNames: []string{"allgather"},
		Messages:   make([]Message, 0, (k-1)*k),
	}
	id := func(s, i int) int32 { return int32(s*k + i) }
	for s := 0; s < k-1; s++ {
		for i := 0; i < k; i++ {
			m := Message{
				ID: id(s, i), Src: int32(i), Dst: int32((i + 1) % k),
				Flits: int32(chunkFlits), Phase: 0,
			}
			if s > 0 {
				m.Deps = []int32{id(s-1, (i-1+k)%k)}
			}
			d.Messages = append(d.Messages, m)
		}
	}
	return d, nil
}

// PairwiseAllToAll generates the personalized all-to-all as k-1 shifted
// exchange rounds: in round r host i sends its block for host (i+r) mod k
// directly to it, for (k-1)k messages total. Each host's rounds are
// serialized (one outstanding send per host), the usual incast-avoiding
// schedule; rounds of different hosts overlap freely.
func PairwiseAllToAll(hosts, chunkFlits int) (*DAG, error) {
	if err := checkArgs("all-to-all/pairwise", hosts, chunkFlits); err != nil {
		return nil, err
	}
	k := hosts
	d := &DAG{
		Collective: "all-to-all", Algo: "pairwise",
		Hosts: hosts, ChunkFlits: chunkFlits,
		PhaseNames: []string{"exchange"},
		Messages:   make([]Message, 0, (k-1)*k),
	}
	id := func(r, i int) int32 { return int32((r-1)*k + i) }
	for r := 1; r < k; r++ {
		for i := 0; i < k; i++ {
			m := Message{
				ID: id(r, i), Src: int32(i), Dst: int32((i + r) % k),
				Flits: int32(chunkFlits), Phase: 0,
			}
			if r > 1 {
				m.Deps = []int32{id(r-1, i)}
			}
			d.Messages = append(d.Messages, m)
		}
	}
	return d, nil
}

// Collectives lists the supported collective names.
var Collectives = []string{"allreduce", "allgather", "broadcast", "reduce", "all-to-all"}

// DefaultAlgo returns the default algorithm for a collective name.
func DefaultAlgo(collective string) string {
	switch collective {
	case "allreduce", "allgather":
		return "ring"
	case "broadcast", "reduce":
		return "binomial"
	case "all-to-all", "alltoall":
		return "pairwise"
	}
	return ""
}

// Generate builds the DAG for a (collective, algorithm) pair by name.
// An empty algo selects the collective's default. Tree collectives root
// at host 0; use the constructors directly for other roots.
func Generate(collective, algo string, hosts, chunkFlits int) (*DAG, error) {
	if algo == "" {
		algo = DefaultAlgo(collective)
	}
	switch collective + "/" + algo {
	case "allreduce/ring":
		return RingAllReduce(hosts, chunkFlits)
	case "allreduce/halving-doubling":
		return HalvingDoublingAllReduce(hosts, chunkFlits)
	case "allgather/ring":
		return RingAllGather(hosts, chunkFlits)
	case "broadcast/binomial":
		return BinomialBroadcast(hosts, chunkFlits, 0)
	case "reduce/binomial":
		return BinomialReduce(hosts, chunkFlits, 0)
	case "all-to-all/pairwise", "alltoall/pairwise":
		return PairwiseAllToAll(hosts, chunkFlits)
	}
	return nil, fmt.Errorf("collectives: unknown workload %s/%s (collectives: %v)", collective, algo, Collectives)
}

func checkArgs(name string, hosts, chunkFlits int) error {
	if hosts < 2 {
		return fmt.Errorf("collectives: %s needs >= 2 hosts, got %d", name, hosts)
	}
	if chunkFlits < 1 {
		return fmt.Errorf("collectives: %s needs >= 1 chunk flit, got %d", name, chunkFlits)
	}
	return nil
}
