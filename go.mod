module dsnet

go 1.22
