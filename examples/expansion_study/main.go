// Expansion study: Section V.C's flexible super nodes let a DSN grow one
// switch at a time without rebuilding the shortcut ladder. This example
// grows a 1020-switch machine to 1032 switches, checks the routing still
// works and measures how little the path quality drifts, then stresses
// the grown network with random link failures.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"dsnet"
)

func main() {
	const base = 1020 // multiple of p = 10: every super node complete

	fmt.Println("growing a DSN machine with Section V.C minor switches:")
	fmt.Printf("%8s %10s %10s %12s\n", "switches", "diameter", "avg path", "added")
	rng := rand.New(rand.NewPCG(7, 7))
	var minors []int
	for added := 0; added <= 12; added += 4 {
		for len(minors) < added {
			minors = append(minors, rng.IntN(base))
		}
		f, err := dsnet.NewFlexibleDSN(base, minors)
		if err != nil {
			log.Fatal(err)
		}
		m := f.Graph().AllPairs()
		if !m.Connected {
			log.Fatal("grown network disconnected")
		}
		fmt.Printf("%8d %10d %10.2f %12d\n", f.N(), m.Diameter, m.ASPL, added)
	}

	// Routing on the grown network: minors are reached via their major.
	f, err := dsnet.NewFlexibleDSN(base, minors)
	if err != nil {
		log.Fatal(err)
	}
	var worst, total int
	samples := 0
	for s := 0; s < f.N(); s += 13 {
		for t := 0; t < f.N(); t += 17 {
			r, err := f.Route(s, t)
			if err != nil {
				log.Fatal(err)
			}
			if r.Len() > worst {
				worst = r.Len()
			}
			total += r.Len()
			samples++
		}
	}
	fmt.Printf("\nrouting on %d switches: avg %.1f hops, worst %d (base bound %d + minor slack)\n",
		f.N(), float64(total)/float64(samples), worst, f.Base.RoutingDiameterBound())

	// Fault tolerance of the grown machine: drop 3% of links at random.
	g := f.Graph()
	kills := g.M() * 3 / 100
	killed := map[int]bool{}
	for len(killed) < kills {
		killed[rng.IntN(g.M())] = true
	}
	sub := g.Subgraph(func(e int) bool { return !killed[e] })
	m := sub.AllPairs()
	fmt.Printf("\nafter failing %d random links (3%%): connected=%v diameter %d avg path %.2f\n",
		kills, m.Connected, m.Diameter, m.ASPL)
	full := g.AllPairs()
	fmt.Printf("degradation: diameter +%d hops, avg path +%.1f%%\n",
		m.Diameter-full.Diameter, (m.ASPL/full.ASPL-1)*100)
}
