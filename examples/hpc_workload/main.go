// HPC workload study: drive DSN and the torus with application-shaped
// traffic (2-D halo exchange and personalized all-to-all) under both
// switching modes, and demonstrate the stateless switch-local routing
// logic of the DSN-E variant.
package main

import (
	"fmt"
	"log"

	"dsnet"
)

func main() {
	cfg := dsnet.DefaultSimConfig()
	cfg.WarmupCycles = 4000
	cfg.MeasureCycles = 8000
	cfg.DrainCycles = 10000

	dsn, err := dsnet.NewDSN(64, dsnet.CeilLog2(64)-1)
	if err != nil {
		log.Fatal(err)
	}
	torus, err := dsnet.NewTorus2DFor(64)
	if err != nil {
		log.Fatal(err)
	}
	hosts := 64 * cfg.HostsPerSwitch

	stencil, err := dsnet.NewStencil2D(16, 16, true) // 256 hosts as a 16x16 grid
	if err != nil {
		log.Fatal(err)
	}
	allToAll, err := dsnet.NewAllToAll(hosts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("application traffic on 64 switches x 4 hosts, adaptive routing")
	fmt.Printf("%-12s %-10s %12s %12s\n", "workload", "topology", "latency_ns", "accepted")
	for _, wl := range []struct {
		name string
		pat  dsnet.TrafficPattern
		rate float64
	}{
		{"halo-2d", stencil, 0.10},
		{"all-to-all", allToAll, 0.06},
	} {
		for _, tc := range []struct {
			name string
			g    *dsnet.Graph
		}{{"DSN", dsn.Graph()}, {"torus", torus.Graph()}} {
			rt, err := dsnet.NewDuatoUpDown(tc.g, cfg.VCs)
			if err != nil {
				log.Fatal(err)
			}
			sim, err := dsnet.NewSim(cfg, tc.g, rt, wl.pat, wl.rate)
			if err != nil {
				log.Fatal(err)
			}
			res, err := sim.Run()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12s %-10s %12.0f %12.2f\n", wl.name, tc.name, res.AvgLatencyNS, res.AcceptedGbps)
		}
	}

	// Switching-mode ablation: wormhole with RTT-sized buffers tracks VCT
	// at low load and saturates earlier under pressure.
	fmt.Println("\nswitching modes on DSN, uniform traffic:")
	graphsDSN := dsn.Graph()
	pts, err := dsnet.SwitchingComparison(cfg, graphsDSN, "uniform", []float64{0.02, 0.12}, 20)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pts {
		fmt.Printf("  rate %.2f: VCT %4.0f ns / %5.2f Gbps   wormhole %4.0f ns / %5.2f Gbps\n",
			p.Rate, p.VCT.AvgLatencyNS, p.VCT.AcceptedGbps, p.Wormhole.AvgLatencyNS, p.Wormhole.AcceptedGbps)
	}

	// Stateless switch-local routing: each DSN-E switch picks the next hop
	// from (own ID, destination, arrival channel class) alone.
	dsnE, err := dsnet.NewDSNE(60)
	if err != nil {
		log.Fatal(err)
	}
	r, err := dsnE.RouteLocal(7, 44)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDSN-E stateless switch-local route 7 -> 44 (%d hops):\n", r.Len())
	for _, h := range r.Hops {
		fmt.Printf("  %-12s %2d -> %2d on the %s channel\n", h.Phase, h.From, h.To, h.Class)
	}
	ref, err := dsnE.Route(7, 44)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("identical to the centralized reference: %v\n", r.Len() == ref.Len())
}
