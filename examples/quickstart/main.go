// Quickstart: build a Distributed Shortcut Network, inspect its
// small-world properties, and trace the custom three-phase routing
// algorithm for one packet.
package main

import (
	"fmt"
	"log"

	"dsnet"
)

func main() {
	// A DSN with 64 switches. p = ceil(log2 64) = 6 levels per super
	// node; x = p-1 gives every super node the full shortcut ladder.
	const n = 64
	d, err := dsnet.NewDSN(n, dsnet.CeilLog2(n)-1)
	if err != nil {
		log.Fatal(err)
	}

	g := d.Graph()
	m := g.AllPairs()
	fmt.Printf("%s: %d switches, %d links\n", d, g.N(), g.M())
	fmt.Printf("degree: min %d avg %.2f max %d (Theorem 1: mostly 4, max 5)\n",
		g.MinDegree(), g.AverageDegree(), g.MaxDegree())
	fmt.Printf("diameter: %d hops (Theorem 1 bound: %.1f)\n", m.Diameter, d.DiameterBound())
	fmt.Printf("average shortest path: %.2f hops\n\n", m.ASPL)

	// Every switch at level l <= x owns one distance-halving shortcut.
	fmt.Println("shortcut ladder of the first super node:")
	for i := 0; i < d.P; i++ {
		sc := d.Shortcut(i)
		if sc < 0 {
			fmt.Printf("  switch %2d (level %d): no shortcut\n", i, d.LevelOf(i))
			continue
		}
		fmt.Printf("  switch %2d (level %d): shortcut to %2d, span %2d (>= n/2^%d = %d)\n",
			i, d.LevelOf(i), sc, d.ClockwiseDist(i, sc), d.LevelOf(i), n>>uint(d.LevelOf(i)))
	}

	// Trace the custom routing: PRE-WORK climbs to a switch whose
	// shortcut can see the destination, MAIN-PROCESS halves the distance
	// with each shortcut, FINISH walks the residue on ring links.
	src, dst := 3, 52
	route, err := d.Route(src, dst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncustom route %d -> %d (%d hops, bound %d):\n",
		src, dst, route.Len(), d.RoutingDiameterBound())
	for _, h := range route.Hops {
		fmt.Printf("  %-12s %2d -> %2d via %s\n", h.Phase, h.From, h.To, h.Class)
	}
	sp := g.ShortestDist(src, dst)
	fmt.Printf("shortest possible: %d hops\n", sp)
}
