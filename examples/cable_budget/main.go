// Cable budget: price the cabling of a 1024-switch machine under the
// paper's machine-room floorplan (Section VI.B) and show why DSN's
// layout-aware shortcuts beat random shortcuts on cost while matching
// their hop counts.
package main

import (
	"fmt"
	"log"

	"dsnet"
)

func main() {
	const n = 1024
	graphs, err := dsnet.BuildComparison(n, 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := dsnet.DefaultLayoutConfig()
	l, err := dsnet.NewLayout(n, cfg)
	if err != nil {
		log.Fatal(err)
	}
	w, depth := l.FloorDims()
	fmt.Printf("floorplan: %d cabinets (%d rows x %d), %.1f m x %.1f m, %d switches/cabinet\n\n",
		l.Cabinets, l.Rows, l.PerRow, w, depth, cfg.SwitchesPerCabinet)

	// The paper's Section VI.B economy argument: interconnect cost grows
	// in proportion to cable length for high-bandwidth optical cables
	// [4][23]. Price each topology with the itemized cost model.
	costModel := dsnet.DefaultCostModel()
	fmt.Printf("%-8s %8s %10s %10s %12s %12s %10s\n",
		"topo", "links", "avg hops", "avg m", "total m", "total $", "diam")
	var dsnTotal, randomTotal float64
	var dsnCost, randomCost float64
	for _, name := range dsnet.ComparisonNames {
		g := graphs[name]
		s, err := l.Cables(g)
		if err != nil {
			log.Fatal(err)
		}
		price, err := l.Price(g, costModel)
		if err != nil {
			log.Fatal(err)
		}
		m := g.AllPairs()
		fmt.Printf("%-8s %8d %10.2f %10.2f %12.0f %12.0f %10d\n",
			name, g.M(), m.ASPL, s.Average, s.Total, price.Total, m.Diameter)
		switch name {
		case "DSN":
			dsnTotal, dsnCost = s.Total, price.Total
		case "RANDOM":
			randomTotal, randomCost = s.Total, price.Total
		}
	}
	fmt.Printf("\nDSN saves %.0f m of cable (%.0f%%) and $%.0f versus the RANDOM topology\n",
		randomTotal-dsnTotal, (1-dsnTotal/randomTotal)*100, randomCost-dsnCost)
	fmt.Printf("at matching path lengths -- the paper's core trade-off.\n")

	// Bonus: the higher-degree regime mentioned in Section VI.B -- a 3-D
	// torus versus a DSN-D (extra short links) and the bidirectional
	// BiDSN (two mirrored shortcut ladders, degree about 6). The paper's
	// exact degree-6 construction is unspecified; these two bracket it:
	// DSN-D-2 undercuts the torus on cable, BiDSN crushes it on path
	// length at slightly more cable.
	fmt.Println()
	t3, err := dsnet.NewTorus3D(8, 8, 16)
	if err != nil {
		log.Fatal(err)
	}
	d6, err := dsnet.NewDSND(n, 2)
	if err != nil {
		log.Fatal(err)
	}
	bi, err := dsnet.NewBidirectionalDSN(n)
	if err != nil {
		log.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		g    *dsnet.Graph
	}{{"3-D torus", t3.Graph()}, {"DSN-D-2", d6.Graph()}, {"BiDSN", bi.Graph()}} {
		s, err := l.Cables(tc.g)
		if err != nil {
			log.Fatal(err)
		}
		m := tc.g.AllPairs()
		fmt.Printf("%-10s avg degree %.1f  avg cable %6.2f m  ASPL %5.2f  diameter %d\n",
			tc.name, tc.g.AverageDegree(), s.Average, m.ASPL, m.Diameter)
	}
}
