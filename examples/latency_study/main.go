// Latency study: drive the cycle-accurate simulator on the paper's
// 64-switch configuration and reproduce the Figure 10 observation that
// DSN tracks the RANDOM topology's latency while beating the torus.
package main

import (
	"fmt"
	"log"

	"dsnet"
)

func main() {
	cfg := dsnet.DefaultSimConfig()
	// Short windows keep this example fast; cmd/dsnfigs runs the full
	// schedule.
	cfg.WarmupCycles = 5000
	cfg.MeasureCycles = 10000
	cfg.DrainCycles = 10000

	fmt.Println("64 switches x 4 hosts, uniform traffic, adaptive routing")
	fmt.Println("with up*/down* escape, 4 VCs, 33-flit packets, 96 Gbps links")
	fmt.Println()

	rates := []float64{0.02, 0.06, 0.10}
	curves, err := dsnet.Fig10Curves(cfg, "uniform", rates, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s", "Gbps/host:")
	for _, r := range rates {
		fmt.Printf(" %9.1f", r*cfg.LinkGbps)
	}
	fmt.Println("   (offered)")
	lat := map[string][]float64{}
	for _, c := range curves {
		fmt.Printf("%-10s", c.Topology)
		for _, p := range c.Points {
			fmt.Printf(" %7.0fns", p.AvgLatencyNS)
			lat[c.Topology] = append(lat[c.Topology], p.AvgLatencyNS)
		}
		fmt.Println()
	}
	imp := (1 - lat["DSN"][0]/lat["Torus"][0]) * 100
	fmt.Printf("\nDSN cuts low-load latency by %.0f%% versus the torus", imp)
	fmt.Printf(" (the paper reports 15%% under uniform traffic)\n")
	gap := (lat["DSN"][0] - lat["RANDOM"][0]) / lat["RANDOM"][0] * 100
	fmt.Printf("DSN sits within %.0f%% of the RANDOM topology's latency\n", gap)
}
