// Deadlock check: verify Theorem 3 empirically. The basic DSN routing
// shares ring channels between its phases and its channel dependency
// graph (CDG) contains a cycle; DSN-E's dedicated Up and Extra channels
// (used with destination scoping in the FINISH phase) break every cycle,
// so by Dally & Seitz's theorem the extended routing is deadlock-free.
package main

import (
	"fmt"
	"log"

	"dsnet"
)

func main() {
	const n = 126 // multiple of p = 7, as DSN-E requires

	fmt.Println("building CDGs from all-pairs custom routes...")

	basic, err := dsnet.NewDSN(n, dsnet.CeilLog2(n)-1)
	if err != nil {
		log.Fatal(err)
	}
	report("basic DSN ", cdgOf(basic))

	dsnE, err := dsnet.NewDSNE(n)
	if err != nil {
		log.Fatal(err)
	}
	report("DSN-E     ", cdgOf(dsnE))

	dsnV, err := dsnet.NewDSNV(n)
	if err != nil {
		log.Fatal(err)
	}
	report("DSN-V     ", cdgOf(dsnV))
}

func cdgOf(d *dsnet.DSN) *dsnet.CDG {
	cdg := dsnet.NewCDG()
	var hops []dsnet.ChannelHop
	for s := 0; s < d.N; s++ {
		for t := 0; t < d.N; t++ {
			r, err := d.Route(s, t)
			if err != nil {
				log.Fatal(err)
			}
			hops = hops[:0]
			for _, h := range r.Hops {
				hops = append(hops, dsnet.ChannelHop{From: h.From, To: h.To, Class: uint8(h.Class)})
			}
			cdg.AddRoute(hops)
		}
	}
	return cdg
}

func report(name string, cdg *dsnet.CDG) {
	cyc := cdg.FindCycle()
	verdict := "ACYCLIC -> deadlock-free (Theorem 3)"
	if cyc != nil {
		verdict = fmt.Sprintf("CYCLE of %d channels -> can deadlock", len(cyc)-1)
	}
	fmt.Printf("%s %5d channels, %6d dependencies: %s\n",
		name, cdg.Channels(), cdg.Dependencies(), verdict)
}
