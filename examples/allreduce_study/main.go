// Allreduce study: replay closed-loop collective workloads — the
// communication kernels of data-parallel training and HPC codes — on the
// cycle-accurate simulator and compare topologies by makespan, the time
// until every rank holds the reduced vector. Unlike the open-loop
// Figure 10 sweeps, a collective's messages are released only when their
// dependencies have been delivered, so the metric rewards a topology for
// finishing dependency chains early, not just for low steady-state
// latency.
//
// The study runs three algorithm shapes at 64 switches (256 hosts):
// ring allreduce (long serial chains of nearest-rank messages),
// halving-doubling allreduce (log-depth, distance-doubling exchanges),
// and binomial-tree broadcast (fan-out from one root).
package main

import (
	"fmt"
	"log"
	"os"

	"dsnet"
)

func main() {
	// Replay mode ignores the warmup/measure/drain schedule; the run ends
	// when the last message is delivered.
	cfg := dsnet.DefaultSimConfig()
	const (
		n    = 64
		reps = 3
		seed = 1
	)

	workloads := []struct{ collective, algo string }{
		{"allreduce", "ring"},
		{"allreduce", "halving-doubling"},
		{"broadcast", "binomial"},
	}
	for _, w := range workloads {
		dag, err := dsnet.GenerateCollective(w.collective, w.algo, n*cfg.HostsPerSwitch, cfg.PacketFlits)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s: %d messages, %d flits ==\n", dag.Name(), len(dag.Messages), dag.TotalFlits())
		rows, err := dsnet.CollectiveSweep(cfg, []int{n}, w.collective, w.algo, cfg.PacketFlits, reps, seed)
		if err != nil {
			log.Fatal(err)
		}
		dsnet.WriteCollectiveTable(os.Stdout, rows)
		fmt.Println()
	}

	fmt.Println("At 64 switches the three comparison topologies finish within ~10% of")
	fmt.Println("each other on every shape: the torus's nearest-neighbor links are a")
	fmt.Println("good match for rank-local collective rounds at a scale where its")
	fmt.Println("diameter is still small. The shortcut payoff appears at scale — at")
	fmt.Println("256 switches (dsnsim -collective allreduce -n 256) DSN completes the")
	fmt.Println("ring allreduce 11% ahead of the torus. The DSN custom source routing")
	fmt.Println("is several times slower than adaptive routing on the same wiring:")
	fmt.Println("serialized chains queue behind its single fixed route per pair.")
}
