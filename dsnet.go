// Package dsnet is the public API of the Distributed Shortcut Networks
// library, a reproduction of "Distributed Shortcut Networks: Layout-aware
// Low-degree Topologies Exploiting Small-world Effect" (ICPP 2013).
//
// It re-exports the internal building blocks as one coherent surface:
//
//   - DSN topology construction and its custom three-phase routing
//     (NewDSN, NewDSNE, NewDSNV, NewDSND, NewFlexibleDSN,
//     NewBidirectionalDSN), including the overshoot-free variant and the
//     stateless switch-local implementation
//   - baseline topologies (Ring, DLN, DLNRandom, Torus2D, Torus3D,
//     Kleinberg, Hypercube, CCC, DeBruijn, Kautz)
//   - graph analysis (diameter, ASPL, clustering, small-world sigma,
//     edge betweenness, edge connectivity, weighted shortest paths)
//   - the machine-room layout, cable-length and cost models of Section
//     VI.B, plus simulated-annealing placement optimization
//   - the cycle-accurate simulators of Section VII (virtual cut-through
//     and wormhole) with five routing functions
//   - the collective-communication workload engine: message-DAG models
//     of allreduce/allgather/broadcast/reduce/all-to-all and a
//     closed-loop replay mode reporting collective makespans
//   - the experiment drivers regenerating Figures 7-10 and the
//     extension experiments recorded in EXPERIMENTS.md
//   - the static verification subsystem (CertifyAll): deadlock
//     certification via channel-dependency-graph acyclicity, the
//     paper-theorem bounds as executable checks, routing-table
//     totality, and fault-degraded re-certification — the engine behind
//     cmd/dsnverify and the certification matrix in EXPERIMENTS.md
//
// See examples/ for runnable walk-throughs and EXPERIMENTS.md for the
// paper-vs-measured record.
package dsnet

import (
	"dsnet/internal/analysis"
	"dsnet/internal/chaos"
	"dsnet/internal/collectives"
	"dsnet/internal/core"
	"dsnet/internal/graph"
	"dsnet/internal/harness"
	"dsnet/internal/layout"
	"dsnet/internal/multipath"
	"dsnet/internal/netsim"
	"dsnet/internal/recovery"
	"dsnet/internal/routing"
	"dsnet/internal/search"
	"dsnet/internal/stats"
	"dsnet/internal/topology"
	"dsnet/internal/traffic"
	"dsnet/internal/verify"
)

// Graph is the shared interconnect graph representation.
type Graph = graph.Graph

// Edge kinds of generated topologies.
type EdgeKind = graph.EdgeKind

// PathMetrics aggregates all-pairs shortest-path statistics.
type PathMetrics = graph.PathMetrics

// DSN is a Distributed Shortcut Network instance (the paper's primary
// contribution).
type DSN = core.DSN

// FlexDSN is the flexible-size DSN of Section V.C.
type FlexDSN = core.FlexDSN

// BiDSN is the degree-6 bidirectional DSN (two mirrored shortcut
// ladders), realizing the Section VI.B degree-6 remark.
type BiDSN = core.BiDSN

// Route is a path produced by the DSN custom routing algorithm.
type Route = core.Route

// Hop is one link traversal of a Route.
type Hop = core.Hop

// Phase labels the three stages of the custom routing algorithm.
type Phase = core.Phase

// LinkClass identifies the channel class of a hop (Section V.A).
type LinkClass = core.LinkClass

// Torus is a k-ary n-dimensional torus or mesh.
type Torus = topology.Torus

// Kleinberg is Kleinberg's small-world grid.
type Kleinberg = topology.Kleinberg

// LayoutConfig holds the machine-room model constants.
type LayoutConfig = layout.Config

// Layout places switches into cabinets on the floorplan.
type Layout = layout.Layout

// CableStats summarizes a topology's cabling requirements.
type CableStats = layout.CableStats

// CostModel prices an interconnect (Section VI.B economy argument).
type CostModel = layout.CostModel

// CostReport itemizes the interconnect cost of one topology.
type CostReport = layout.CostReport

// Placement is a switch-to-cabinet assignment (see OptimizePlacement).
type Placement = layout.Placement

// SimConfig holds the cycle-accurate simulator parameters.
type SimConfig = netsim.Config

// Sim is one simulator instance (virtual cut-through switching).
type Sim = netsim.Sim

// WormSim is the wormhole-switching simulator.
type WormSim = netsim.WormSim

// SimResult aggregates one simulation run.
type SimResult = netsim.Result

// Router supplies next-hop candidates to the simulator.
type Router = netsim.Router

// TrafficPattern draws packet destinations.
type TrafficPattern = traffic.Pattern

// UpDown is the up*/down* routing used for escape paths.
type UpDown = routing.UpDown

// DistanceTable holds all-pairs hop distances.
type DistanceTable = routing.DistanceTable

// CDG is a channel dependency graph for deadlock analysis.
type CDG = routing.CDG

// ChannelHop is one traversal of a directed channel.
type ChannelHop = routing.ChannelHop

// LatencyCurve is one series of Figure 10.
type LatencyCurve = analysis.LatencyCurve

// PathRow is one network size of Figures 7-8.
type PathRow = analysis.PathRow

// CableRow is one network size of Figure 9.
type CableRow = analysis.CableRow

// BalanceResult summarizes routing traffic balance.
type BalanceResult = analysis.BalanceResult

// BottleneckRow summarizes a topology's theoretical load concentration.
type BottleneckRow = analysis.BottleneckRow

// FaultRow summarizes resilience to random link failures.
type FaultRow = analysis.FaultRow

// DegradationRow is one point of the live-fault degradation experiment.
type DegradationRow = analysis.DegradationRow

// FaultPlan is a deterministic schedule of link/switch failures (and
// repairs) applied during a simulation run.
type FaultPlan = netsim.FaultPlan

// FaultEvent is one scheduled fault or repair.
type FaultEvent = netsim.FaultEvent

// FaultAware is implemented by routers that adapt to fabric faults.
type FaultAware = netsim.FaultAware

// CollectiveDAG is a collective-communication workload modeled as a
// message DAG (ring/halving-doubling allreduce, binomial broadcast and
// reduce, ring allgather, pairwise all-to-all).
type CollectiveDAG = collectives.DAG

// CollectiveMessage is one dependency-gated transfer of a CollectiveDAG.
type CollectiveMessage = collectives.Message

// Replay is a closed-loop workload executed by the simulators: injection
// of each message is gated on the delivery of its dependencies, and the
// run reports the makespan with a per-phase breakdown.
type Replay = netsim.Replay

// ReplayMessage is one dependency-gated message of a Replay.
type ReplayMessage = netsim.ReplayMessage

// CollectiveRow summarizes closed-loop collective replays on one
// (topology, routing) pair.
type CollectiveRow = analysis.CollectiveRow

// RelatedRow is one entry of the Section III related-work comparison.
type RelatedRow = analysis.RelatedRow

// SwitchingPoint compares VCT and wormhole switching at one load.
type SwitchingPoint = analysis.SwitchingPoint

// PhysicalRow is one size of the analytic end-to-end latency model.
type PhysicalRow = analysis.PhysicalRow

// ThroughputRow is the paper's saturation-throughput metric.
type ThroughputRow = analysis.ThroughputRow

// LadderRow is one setting of the DSN-x ladder ablation.
type LadderRow = analysis.LadderRow

// PhysicalConst holds the Section I timing constants (100 ns switch,
// 5 ns/m cable).
type PhysicalConst = analysis.PhysicalConst

// DSN constructors (Sections IV and V).
var (
	NewDSN              = core.New
	NewDSNE             = core.NewE
	NewDSNV             = core.NewV
	NewDSND             = core.NewD
	NewFlexibleDSN      = core.NewFlexible
	NewBidirectionalDSN = core.NewBidirectional
	CeilLog2            = core.CeilLog2
)

// DSN family variants.
const (
	VariantBasic = core.VariantBasic
	VariantE     = core.VariantE
	VariantV     = core.VariantV
	VariantD     = core.VariantD
)

// Baseline topology generators (Section VI comparisons and related work).
var (
	NewRing          = topology.Ring
	NewDLN           = topology.DLN
	NewDLNRandom     = topology.DLNRandom
	NewRandomRegular = topology.RandomRegular
	NewTorus         = topology.NewTorus
	NewTorus2D       = topology.Torus2D
	NewTorus2DFor    = topology.Torus2DFor
	NewTorus3D       = topology.Torus3D
	NewMesh2D        = topology.Mesh2D
	NewKleinberg     = topology.NewKleinberg
	NewHypercube     = topology.Hypercube
	NewCCC           = topology.CCC
	NewDeBruijn      = topology.DeBruijn
	NewKautz         = topology.Kautz
	NewDragonfly     = topology.NewDragonfly
	NewFlattenedBfly = topology.FlattenedButterfly
	NearSquareDims   = topology.NearSquareDims
)

// Dragonfly is the high-radix topology of Kim et al. [4].
type Dragonfly = topology.Dragonfly

// Routing machinery.
var (
	NewUpDown        = routing.NewUpDown
	NewDistanceTable = routing.NewDistanceTable
	NewDOR           = routing.NewDOR
	NewCDG           = routing.NewCDG
)

// Layout model (Section VI.B).
var (
	NewLayout           = layout.New
	DefaultLayoutConfig = layout.DefaultConfig
	DefaultCostModel    = layout.DefaultCostModel
	AverageCableLength  = layout.AverageCableLength
)

// Simulator (Section VII).
var (
	DefaultSimConfig     = netsim.Default
	NewSim               = netsim.NewSim
	NewSimReplay         = netsim.NewSimReplay
	NewWormSimReplay     = netsim.NewWormSimReplay
	NewSimCableAware     = netsim.NewSimCableAware
	NewWormSim           = netsim.NewWormSim
	NewWormSimCableAware = netsim.NewWormSimCableAware
	NewDuatoUpDown       = netsim.NewDuatoUpDown
	NewUpDownOnly        = netsim.NewUpDownOnly
	NewDSNSourceRouted   = netsim.NewDSNSourceRouted
	// NewDSNSourceRoutedUnsafe drives the simulator with the BASIC
	// variant's channel classes, which deadlock under load — it exists to
	// demonstrate why Section V.A matters.
	NewDSNSourceRoutedUnsafe = netsim.NewDSNSourceRoutedUnsafe
	NewDORTorusRouter        = netsim.NewDORTorus
	NewValiant               = netsim.NewValiant
)

// Fault injection (live link/switch failures during simulation).
var (
	NewFaultPlan     = netsim.NewFaultPlan
	RandomLinkFaults = netsim.RandomLinkFaults
	LinkDown         = netsim.LinkDown
	LinkUp           = netsim.LinkUp
	SwitchDown       = netsim.SwitchDown
	SwitchUp         = netsim.SwitchUp
)

// Traffic patterns (Section VII.A plus HPC application workloads).
var (
	NewBitReversal = traffic.NewBitReversal
	NewNeighboring = traffic.NewNeighboring
	NewTranspose   = traffic.NewTranspose
	NewShuffle     = traffic.NewShuffle
	NewStencil2D   = traffic.NewStencil2D
	NewAllToAll    = traffic.NewAllToAll
	NewTornado     = traffic.NewTornado
)

// Graph serialization.
var (
	// ParseGraph reads the text edge-list format produced by
	// (*Graph).WriteTo.
	ParseGraph = graph.Parse
)

// Collective workloads (closed-loop replay; see internal/collectives).
var (
	// GenerateCollective builds a collective's message DAG by name; an
	// empty algo selects the collective's default algorithm.
	GenerateCollective = collectives.Generate
	// CollectiveReplay converts a CollectiveDAG into the Replay the
	// simulators execute (NewSimReplay / NewWormSimReplay).
	CollectiveReplay = collectives.ToReplay
	// CollectiveNames lists the supported collectives.
	CollectiveNames = collectives.Collectives
	// DefaultCollectiveAlgo maps a collective to its default algorithm.
	DefaultCollectiveAlgo = collectives.DefaultAlgo
	// Collective DAG constructors for non-default roots/algorithms.
	NewRingAllReduce            = collectives.RingAllReduce
	NewHalvingDoublingAllReduce = collectives.HalvingDoublingAllReduce
	NewBinomialBroadcast        = collectives.BinomialBroadcast
	NewBinomialReduce           = collectives.BinomialReduce
	NewRingAllGather            = collectives.RingAllGather
	NewPairwiseAllToAll         = collectives.PairwiseAllToAll
)

// NewUniform returns the uniform random traffic pattern.
func NewUniform(hosts int) TrafficPattern { return traffic.Uniform{Hosts: hosts} }

// NewHotspot returns a hotspot pattern sending fraction of traffic to hot.
func NewHotspot(hosts, hot int, fraction float64) TrafficPattern {
	return traffic.Hotspot{Hosts: hosts, Hot: hot, Fraction: fraction}
}

// Experiment drivers (Figures 7-10).
var (
	BuildComparison       = analysis.BuildComparison
	PathSweep             = analysis.PathSweep
	CableSweep            = analysis.CableSweep
	LatencySweep          = analysis.LatencySweep
	Fig10Curves           = analysis.Fig10Curves
	BalanceComparison     = analysis.BalanceComparison
	BottleneckSweep       = analysis.BottleneckSweep
	FaultSweep            = analysis.FaultSweep
	DegradationSweep      = analysis.DegradationSweep
	RelatedWork           = analysis.RelatedWork
	SwitchingComparison   = analysis.SwitchingComparison
	PhysicalLatencySweep  = analysis.PhysicalLatencySweep
	LadderSweep           = analysis.LadderSweep
	WriteLadderTable      = analysis.WriteLadderTable
	SaturationThroughput  = analysis.SaturationThroughput
	ThroughputComparison  = analysis.ThroughputComparison
	WriteThroughputTable  = analysis.WriteThroughputTable
	DefaultPhysicalConst  = analysis.DefaultPhysicalConst
	WritePhysicalTable    = analysis.WritePhysicalTable
	WriteFaultTable       = analysis.WriteFaultTable
	WriteDegradationTable = analysis.WriteDegradationTable
	WriteRelatedTable     = analysis.WriteRelatedTable
	WriteSwitchingTable   = analysis.WriteSwitchingTable
	WritePathTable        = analysis.WritePathTable
	WriteCableTable       = analysis.WriteCableTable
	WriteLatencyTable     = analysis.WriteLatencyTable
	WriteBottleneckTable  = analysis.WriteBottleneckTable
	PatternFor            = analysis.PatternFor
	CollectiveSweep       = analysis.CollectiveSweep
	WriteCollectiveTable  = analysis.WriteCollectiveTable
	// MeanAndCI aggregates repetitions: sample mean with a 95%
	// confidence half-width.
	MeanAndCI = stats.MeanAndCI
)

// Static verification: the certification engine behind cmd/dsnverify.
// CertifyAll builds the full channel dependency graph of every
// registered topology x routing x VC-assignment combination, certifies
// deadlock freedom via Dally-Seitz acyclicity, and evaluates the
// paper-theorem bounds and routing-table totality as executable checks;
// the CertifyDegraded* functions re-certify fault-degraded fabrics
// along a FaultPlan timeline.
type (
	Certificate     = verify.Certificate
	CertCheckResult = verify.CheckResult
	CertOptions     = verify.Options
	CertStatus      = verify.Status
	TimelineEntry   = verify.TimelineEntry
)

// Certification statuses.
const (
	StatusCertified = verify.StatusCertified
	StatusCyclic    = verify.StatusCyclic
	StatusError     = verify.StatusError
)

// Verification entry points.
var (
	CertifyAll            = verify.CertifyAll
	DefaultCertOptions    = verify.DefaultOptions
	StandardCombos        = verify.StandardCombos
	CertifyDegradedUpDown = verify.CertifyDegradedUpDown
	CertifyDegradedDSN    = verify.CertifyDegradedDSN
	CertifyFaultTimeline  = verify.CertifyFaultTimeline
	SameCertificate       = verify.SameCertificate
	// Recovery escape-network certification: the Dally-Seitz half of
	// the runtime deadlock-recovery safety argument, per degraded epoch.
	CertifyRecoveryEscape   = verify.CertifyRecoveryEscape
	CertifyRecoveryTimeline = verify.CertifyRecoveryTimeline
)

// Runtime invariant monitors (armed per run with (*Sim).SetMonitors /
// (*WormSim).SetMonitors): packet conservation at every fault epoch,
// per-packet hop TTL from the Theorem 1(c) routing diameter bound, and
// head-of-line starvation. The progress watchdog is always on and
// configurable via SimConfig.WatchdogCycles.
type (
	SimMonitors      = netsim.Monitors
	MonitorViolation = netsim.MonitorViolation
	NoProgressError  = netsim.NoProgressError
	// HopBounder is implemented by routers with a provable per-packet
	// hop bound (DSNSourceRouted returns 3p+r; UpDownOnly its routing
	// diameter).
	HopBounder = netsim.HopBounder
)

// Monitor names, as reported by ViolatedMonitor and chaos verdicts.
const (
	MonitorWatchdog      = netsim.MonitorWatchdog
	MonitorConservation  = netsim.MonitorConservation
	MonitorHopTTL        = netsim.MonitorHopTTL
	MonitorHOLWait       = netsim.MonitorHOLWait
	MonitorReconvergence = netsim.MonitorReconvergence
)

var (
	// ErrNoProgress is the sentinel under every watchdog trip.
	ErrNoProgress = netsim.ErrNoProgress
	// ViolatedMonitor extracts the violated monitor's name from a Run
	// error.
	ViolatedMonitor = netsim.ViolatedMonitor
)

// Runtime deadlock detection and recovery (armed per run with
// (*Sim).SetRecovery / (*WormSim).SetRecovery): per-packet stall
// detection with a confirmation pass, Disha-style abort of confirmed
// victims onto the up*/down* escape network, and optional
// drain-before-reconfigure at fault epochs. Disarmed or idle recovery
// leaves runs bit-identical to an unarmed simulator.
type (
	RecoveryConfig  = recovery.Config
	RecoveryTracker = recovery.Tracker
	DeadlockEvent   = recovery.DeadlockEvent
	RecoveryEscape  = recovery.Escape
)

var (
	RecoveryDefault   = recovery.Default
	NewRecoveryEscape = recovery.NewEscape
)

// MonitorRecovery is reported by recovery-armed chaos runs that end
// with confirmed deadlocks neither recovered, released, nor accounted
// as lost.
const MonitorRecovery = netsim.MonitorRecovery

// Chaos engine (cmd/dsnchaos): seeded fault-injection campaigns run
// against both simulator engines with the monitors armed, plus
// delta-debugging of failing campaigns into minimal checked-in
// reproducers.
type (
	ChaosTargetSpec = chaos.Target
	ChaosOptions    = chaos.Options
	ChaosScenario   = chaos.Scenario
	ChaosVerdict    = chaos.Verdict
	ChaosEngine     = chaos.Engine
	ChaosRepro      = chaos.Repro
	ChaosWindow     = chaos.Window
	ChaosRow        = analysis.ChaosRow
	RecoveryRow     = analysis.RecoveryRow
)

var (
	ChaosTarget         = chaos.BuildTarget
	ChaosTargetNames    = chaos.TargetNames
	ChaosDefaultOptions = chaos.DefaultOptions
	NewChaosEngine      = chaos.New
	ChaosCampaign       = chaos.Campaign
	ChaosGenerate       = chaos.Generate
	ChaosShrink         = chaos.Shrink
	ParseChaosRepro     = chaos.ParseRepro
	ChaosRecoveryConfig = chaos.RecoveredReplayConfig
	// ChaosArmMultipath swaps a chaos target's router for the
	// k-shortest-path spraying router over the same graph.
	ChaosArmMultipath = chaos.ArmMultipath
	ChaosSweep        = analysis.ChaosSweep
	WriteChaosTable   = analysis.WriteChaosTable
	// Recovery-cost sweep: unarmed vs live-swap vs drain-before-
	// reconfigure recovery across link-failure fractions.
	RecoverySweep      = analysis.RecoverySweep
	RecoverySweepWith  = analysis.RecoverySweepWith
	RecoverySweepCtx   = analysis.RecoverySweepCtx
	WriteRecoveryTable = analysis.WriteRecoveryTable
	RecoveryModes      = analysis.RecoveryModes
)

// Sweep-orchestration harness (cmd/dsnbench and the -j/-cache flags of
// dsnfigs, dsnsim and dsnchaos): sweeps decompose into independent
// seeded cells executed on a bounded worker pool with deterministic
// assembly — parallel output is bit-identical to serial — and a
// content-addressed on-disk cache replays completed cells across runs.
type (
	// SweepRunner executes sweep cells (worker bound, cache, bench).
	SweepRunner = harness.Runner
	// SweepCellKey is the canonical identity of one sweep cell.
	SweepCellKey = harness.CellKey
	// SweepCache is the content-addressed on-disk result cache.
	SweepCache = harness.Cache
	// SweepBench accumulates per-sweep execution statistics.
	SweepBench = harness.Bench
	// SweepStats summarizes one sweep's execution.
	SweepStats = harness.Stats
	// BenchReport is the machine-readable BENCH_sweeps.json document.
	BenchReport = harness.Report
	// BenchSweepStat is one sweep's serialized statistics.
	BenchSweepStat = harness.SweepStat
	// BenchReplayCheck records a cached-replay bit-identity verification.
	BenchReplayCheck = harness.ReplayCheck
	// BenchScalingRow is one point of the serial-vs-parallel scaling curve.
	BenchScalingRow = harness.ScalingRow
)

const (
	// SweepEngineVersion stamps every cell key; bumping it invalidates
	// the whole cache when simulator semantics change.
	SweepEngineVersion = harness.EngineVersion
	// DefaultSweepCacheDir is where the CLIs keep cached cells.
	DefaultSweepCacheDir = harness.DefaultCacheDir
	// BenchSchema versions the BENCH_sweeps.json document.
	BenchSchema = harness.BenchSchema
)

var (
	NewSweepRunner     = harness.NewRunner
	DefaultSweepRunner = harness.Default
	SerialSweepRunner  = harness.Serial
	OpenSweepCache     = harness.OpenCache
	NewBenchReport     = harness.NewReport

	// Sweep drivers on an explicit runner; the plain variants above run
	// the same cells on the default (parallel, uncached) runner.
	PathSweepWith        = analysis.PathSweepWith
	CableSweepWith       = analysis.CableSweepWith
	LatencySweepWith     = analysis.LatencySweepWith
	Fig10CurvesWith      = analysis.Fig10CurvesWith
	FaultSweepWith       = analysis.FaultSweepWith
	DegradationSweepWith = analysis.DegradationSweepWith
	CollectiveSweepWith  = analysis.CollectiveSweepWith
	ChaosSweepWith       = analysis.ChaosSweepWith

	// Context-aware sweep drivers (cmd/dsnserve): cancelling the context
	// stops dispatching cells and surfaces ctx.Err() instead of partial
	// results.
	PathSweepCtx        = analysis.PathSweepCtx
	CableSweepCtx       = analysis.CableSweepCtx
	LatencySweepCtx     = analysis.LatencySweepCtx
	Fig10CurvesCtx      = analysis.Fig10CurvesCtx
	FaultSweepCtx       = analysis.FaultSweepCtx
	DegradationSweepCtx = analysis.DegradationSweepCtx
	CollectiveSweepCtx  = analysis.CollectiveSweepCtx
	ChaosSweepCtx       = analysis.ChaosSweepCtx

	// BuildTopology constructs one named comparison topology — the
	// request-driven entry point dsnserve uses.
	BuildTopology = analysis.BuildTopology
)

// Topology design-space search (cmd/dsnsearch): a seeded quality/cost
// Pareto optimizer over ring-plus-shortcut genomes. Candidates are
// evaluated as content-addressed sweep cells (resumable, bit-identical
// at any -j), Dally–Seitz certified before simulation, and archived on
// a deterministic Pareto front over the paper's quality/cost axes.
type (
	// Genome is one candidate topology: a canonical extra-edge set over
	// a base ring.
	Genome = search.Genome
	// Gene is one canonical extra edge of a genome.
	Gene = search.Gene
	// SearchConstraints bound the design space (switch count, port budget).
	SearchConstraints = search.Constraints
	// SearchEvalConfig fixes how candidates are measured.
	SearchEvalConfig = search.EvalConfig
	// SearchEval is one candidate's cached evaluation.
	SearchEval = search.Eval
	// SearchCandidate pairs a genome with its origin and evaluation.
	SearchCandidate = search.Candidate
	// SearchConfig parameterizes one search run.
	SearchConfig = search.Config
	// SearchResult is the deterministic outcome document of one search.
	SearchResult = search.Result
	// SearchRunStats reports cache/execution statistics of one search.
	SearchRunStats = search.RunStats
	// SearchArchive is the deterministic Pareto archive.
	SearchArchive = search.Archive
	// ParetoPoint is one candidate on the rendered quality/cost plane.
	ParetoPoint = analysis.ParetoPoint
)

// SearchResultSchema versions the dsnsearch Result document.
const SearchResultSchema = search.ResultSchema

var (
	NewGenome           = search.NewGenome
	GenomeFromGraph     = search.FromGraph
	DefaultSearchConfig = search.DefaultConfig
	DefaultSearchEval   = search.DefaultEvalConfig
	SearchRun           = search.Run
	SearchEvaluate      = search.Evaluate
	SearchSeedPool      = search.SeedPool
	SearchDominates     = search.Dominates
	SearchPoints        = search.Points
	WriteParetoTable    = analysis.WriteParetoTable

	// SearchObjectives and SearchDrivers list the accepted -objective
	// and -driver values of cmd/dsnsearch.
	SearchObjectives = search.Objectives
	SearchDrivers    = search.Drivers
)

// Multipath source routing (internal/multipath): a deterministic
// k-shortest-path engine with canonical (length, lexicographic) path
// ordering, per-pair edge-disjoint path tables, a source-routed spraying
// router with three seeded selectors (static per-flow hash, packet
// round-robin, load-aware adaptive) riding an up*/down* VC0 escape, and
// the path-diversity metrics (realized edge-disjoint paths vs the Menger
// min-cut ceiling) behind dsnalyze -diversity and dsnsearch -objective
// diversity.
type (
	// MultipathPath is one loopless switch-level route.
	MultipathPath = multipath.Path
	// MultipathPathSet is the canonical route set of one ordered pair.
	MultipathPathSet = multipath.PathSet
	// MultipathTable holds the per-pair path sets of one graph.
	MultipathTable = multipath.Table
	// MultipathConfig parameterizes the spraying router.
	MultipathConfig = multipath.Config
	// MultipathRouter is the source-routed spraying router (a Router).
	MultipathRouter = multipath.Router
	// MultipathSelector picks among a pair's sprayed paths.
	MultipathSelector = multipath.Selector
	// PathDiversity summarizes a topology's multipath headroom.
	PathDiversity = multipath.Diversity
	// MultipathRow is one (topology, scheme, workload) sweep point.
	MultipathRow = analysis.MultipathRow
	// DiversityRow is one topology's diversity profile at one k.
	DiversityRow = analysis.DiversityRow
)

// Multipath selectors and the per-pair path budget.
const (
	SelectorStatic   = multipath.SelectorStatic
	SelectorRR       = multipath.SelectorRR
	SelectorAdaptive = multipath.SelectorAdaptive
	MultipathMaxK    = multipath.MaxK
)

var (
	NewMultipath          = multipath.New
	NewMultipathWithTable = multipath.NewWithTable
	BuildMultipathTable   = multipath.BuildTable
	KShortestPaths        = multipath.KShortest
	DisjointShortestPaths = multipath.DisjointShortest
	EdgeDisjointPaths     = multipath.EdgeDisjoint
	VertexDisjointPaths   = multipath.VertexDisjoint
	MinCut                = multipath.MinCut
	PathDiversityFor      = multipath.DiversityFor
	MeanMinCut            = multipath.MeanMinCut
	ParseSelector         = multipath.ParseSelector
	// SelectorNames lists the -selector values the CLIs accept.
	SelectorNames = multipath.SelectorNames
	// DecodePathSet parses the canonical path-set encoding.
	DecodePathSet = multipath.DecodePathSet

	// Multipath experiment drivers and the verify-layer certification.
	MultipathSweep           = analysis.MultipathSweep
	MultipathSweepWith       = analysis.MultipathSweepWith
	MultipathSweepCtx        = analysis.MultipathSweepCtx
	DiversitySweep           = analysis.DiversitySweep
	DiversitySweepWith       = analysis.DiversitySweepWith
	DiversitySweepCtx        = analysis.DiversitySweepCtx
	WriteMultipathTable      = analysis.WriteMultipathTable
	WriteDiversityTable      = analysis.WriteDiversityTable
	CertifyDegradedMultipath = verify.CertifyDegradedMultipath
	CheckMultipathTotality   = verify.CheckMultipathTotality
)

// MultipathSchemes and MultipathWorkloads list the grid MultipathSweep runs.
var (
	MultipathSchemes   = analysis.MultipathSchemes
	MultipathWorkloads = analysis.MultipathWorkloads
)

// PatternNames lists the traffic patterns PatternFor accepts.
var PatternNames = analysis.PatternNames

// ComparisonNames lists the paper's comparison topologies in presentation
// order: Torus, RANDOM, DSN.
var ComparisonNames = analysis.Names
