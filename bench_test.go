// Benchmarks regenerating every table and figure of the paper's
// evaluation. Run with:
//
//	go test -bench=Fig -benchmem .
//
// Each benchmark executes the full experiment behind one figure and
// reports its headline quantities as custom metrics, so a single -bench
// run reproduces the numbers recorded in EXPERIMENTS.md. The cmd/dsnfigs
// tool prints the same data as full plain-text tables.
package dsnet

import (
	"testing"
)

// benchSimConfig returns a simulator schedule short enough for benchmark
// iterations while keeping the latency ordering stable.
func benchSimConfig() SimConfig {
	cfg := DefaultSimConfig()
	cfg.WarmupCycles = 2000
	cfg.MeasureCycles = 4000
	cfg.DrainCycles = 6000
	return cfg
}

var fig78Sizes = []int{5, 6, 7, 8, 9, 10, 11} // log2 of 32..2048 switches

// BenchmarkFig7_Diameter regenerates Figure 7: diameter vs network size
// for 2-D torus, RANDOM (DLN-2-2) and DSN.
func BenchmarkFig7_Diameter(b *testing.B) {
	var rows []PathRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = PathSweep(fig78Sizes, []uint64{1})
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.Diameter["DSN"], "dsn_diam_2048")
	b.ReportMetric(last.Diameter["Torus"], "torus_diam_2048")
	b.ReportMetric(last.Diameter["RANDOM"], "random_diam_2048")
}

// BenchmarkFig8_ASPL regenerates Figure 8: average shortest path length
// vs network size.
func BenchmarkFig8_ASPL(b *testing.B) {
	var rows []PathRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = PathSweep(fig78Sizes, []uint64{1})
		if err != nil {
			b.Fatal(err)
		}
	}
	first, last := rows[1], rows[len(rows)-1] // 64 and 2048 switches
	b.ReportMetric(first.ASPL["DSN"], "dsn_aspl_64")
	b.ReportMetric(first.ASPL["Torus"], "torus_aspl_64")
	b.ReportMetric(last.ASPL["DSN"], "dsn_aspl_2048")
	b.ReportMetric(last.ASPL["Torus"], "torus_aspl_2048")
}

// BenchmarkFig9_CableLength regenerates Figure 9: average cable length vs
// network size under the Section VI.B machine-room layout.
func BenchmarkFig9_CableLength(b *testing.B) {
	var rows []CableRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = CableSweep(fig78Sizes, []uint64{1}, DefaultLayoutConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.Average["DSN"], "dsn_cable_m_2048")
	b.ReportMetric(last.Average["Torus"], "torus_cable_m_2048")
	b.ReportMetric(last.Average["RANDOM"], "random_cable_m_2048")
}

// fig10 runs one Figure 10 subfigure: 64 switches, 4 hosts/switch,
// adaptive routing with up*/down* escape, sweeping offered load, and
// reports the low-load latency of each topology.
func fig10(b *testing.B, pattern string) {
	rates := []float64{0.02, 0.06, 0.10}
	var curves []LatencyCurve
	for i := 0; i < b.N; i++ {
		var err error
		curves, err = Fig10Curves(benchSimConfig(), pattern, rates, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, c := range curves {
		name := map[string]string{"Torus": "torus", "RANDOM": "random", "DSN": "dsn"}[c.Topology]
		b.ReportMetric(c.Points[0].AvgLatencyNS, name+"_lat_ns")
		b.ReportMetric(c.Points[len(c.Points)-1].AcceptedGbps, name+"_acc_gbps")
	}
}

// BenchmarkFig10a_Uniform regenerates Figure 10(a): latency vs accepted
// traffic under uniform traffic.
func BenchmarkFig10a_Uniform(b *testing.B) { fig10(b, "uniform") }

// BenchmarkFig10b_BitReversal regenerates Figure 10(b).
func BenchmarkFig10b_BitReversal(b *testing.B) { fig10(b, "bit-reversal") }

// BenchmarkFig10c_Neighboring regenerates Figure 10(c).
func BenchmarkFig10c_Neighboring(b *testing.B) { fig10(b, "neighboring") }

// BenchmarkBalance_CustomVsUpDown regenerates the Section VII custom
// routing traffic-balance comparison (the paper's "initial work" result).
func BenchmarkBalance_CustomVsUpDown(b *testing.B) {
	var res []BalanceResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = BalanceComparison(benchSimConfig(), 64, 0.01)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res {
		b.ReportMetric(r.CoV, r.Scheme+"_cov")
	}
}

// Ablation benches for the design choices called out in DESIGN.md.

// BenchmarkAblation_DSNShortcutLadder compares the DSN against a pure
// ring of the same size: the cost of computing metrics doubles as a
// regression guard for the shortcut construction.
func BenchmarkAblation_DSNShortcutLadder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := NewDSN(1024, CeilLog2(1024)-1)
		if err != nil {
			b.Fatal(err)
		}
		m := d.Graph().AllPairs()
		if i == 0 {
			b.ReportMetric(float64(m.Diameter), "dsn_diameter")
		}
	}
}

// BenchmarkAblation_DSNDvsBasic measures how the DSN-D-2 short links
// trade shortcut levels for local-walk length.
func BenchmarkAblation_DSNDvsBasic(b *testing.B) {
	var dd, db float64
	for i := 0; i < b.N; i++ {
		basic, err := NewDSN(1024, CeilLog2(1024)-1)
		if err != nil {
			b.Fatal(err)
		}
		d2, err := NewDSND(1024, 2)
		if err != nil {
			b.Fatal(err)
		}
		db = float64(basic.Graph().AllPairs().Diameter)
		dd = float64(d2.Graph().AllPairs().Diameter)
	}
	b.ReportMetric(db, "basic_diameter")
	b.ReportMetric(dd, "dsnd2_diameter")
}

// BenchmarkRoutingDiameter measures the custom routing's all-pairs cost
// and verifies the Theorem 1(c) bound as a side effect.
func BenchmarkRoutingDiameter(b *testing.B) {
	d, err := NewDSN(256, CeilLog2(256)-1)
	if err != nil {
		b.Fatal(err)
	}
	maxLen := 0
	for i := 0; i < b.N; i++ {
		maxLen = 0
		for s := 0; s < d.N; s++ {
			for t := 0; t < d.N; t++ {
				l, err := d.RouteLen(s, t)
				if err != nil {
					b.Fatal(err)
				}
				if l > maxLen {
					maxLen = l
				}
			}
		}
	}
	b.ReportMetric(float64(maxLen), "routing_diameter")
	b.ReportMetric(float64(d.RoutingDiameterBound()), "theorem_bound")
}

// BenchmarkFigPhysical regenerates the analytic end-to-end latency model
// (hops x 100ns + cable x 5ns/m) across the size sweep.
func BenchmarkFigPhysical(b *testing.B) {
	var rows []PhysicalRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = PhysicalLatencySweep(fig78Sizes, []uint64{1}, DefaultLayoutConfig(), DefaultPhysicalConst())
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.MeanNS["DSN"], "dsn_ns_2048")
	b.ReportMetric(last.MeanNS["Torus"], "torus_ns_2048")
	b.ReportMetric(last.MeanNS["RANDOM"], "random_ns_2048")
}

// BenchmarkAblation_PlacementOptimizer quantifies the layout-awareness
// claim: annealing the cabinet placement finds nothing to improve for
// DSN but shortens RANDOM's cables substantially.
func BenchmarkAblation_PlacementOptimizer(b *testing.B) {
	const n = 256
	d, err := NewDSN(n, CeilLog2(n)-1)
	if err != nil {
		b.Fatal(err)
	}
	random, err := NewDLNRandom(n, 2, 2, 5)
	if err != nil {
		b.Fatal(err)
	}
	l, err := NewLayout(n, DefaultLayoutConfig())
	if err != nil {
		b.Fatal(err)
	}
	var dsnGain, rndGain float64
	for i := 0; i < b.N; i++ {
		_, base, best, err := l.OptimizePlacement(d.Graph(), 60000, 7)
		if err != nil {
			b.Fatal(err)
		}
		dsnGain = (1 - best/base) * 100
		_, base, best, err = l.OptimizePlacement(random, 60000, 7)
		if err != nil {
			b.Fatal(err)
		}
		rndGain = (1 - best/base) * 100
	}
	b.ReportMetric(dsnGain, "dsn_gain_pct")
	b.ReportMetric(rndGain, "random_gain_pct")
}

// BenchmarkCollective_RingAllreduce replays the closed-loop ring
// allreduce on the comparison topologies (plus DSN custom routing) and
// reports each topology's mean makespan. Small scale — 16 switches,
// one-packet chunks — so a -benchtime=1x run doubles as a CI smoke test
// of the collectives engine.
func BenchmarkCollective_RingAllreduce(b *testing.B) {
	var rows []CollectiveRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = CollectiveSweep(benchSimConfig(), []int{16}, "allreduce", "ring", 0, 1, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		name := map[string]string{"Torus": "torus", "RANDOM": "random", "DSN": "dsn", "DSN-custom": "dsn_custom"}[r.Name]
		b.ReportMetric(r.MakespanUS, name+"_makespan_us")
	}
}

// BenchmarkCollective_Broadcast replays the binomial-tree broadcast —
// the fan-out shape whose critical path is log2(hosts) serialized hops —
// and reports the makespans.
func BenchmarkCollective_Broadcast(b *testing.B) {
	var rows []CollectiveRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = CollectiveSweep(benchSimConfig(), []int{16}, "broadcast", "", 0, 1, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		name := map[string]string{"Torus": "torus", "RANDOM": "random", "DSN": "dsn", "DSN-custom": "dsn_custom"}[r.Name]
		b.ReportMetric(r.MakespanUS, name+"_makespan_us")
	}
}

// BenchmarkAblation_EscapePatience contrasts post-saturation throughput
// with and without the escape-patience policy.
func BenchmarkAblation_EscapePatience(b *testing.B) {
	d, err := NewDSN(64, 5)
	if err != nil {
		b.Fatal(err)
	}
	rt, err := NewDuatoUpDown(d.Graph(), 4)
	if err != nil {
		b.Fatal(err)
	}
	var eager, patient float64
	for i := 0; i < b.N; i++ {
		for _, patience := range []int64{0, 16} {
			cfg := benchSimConfig()
			cfg.EscapePatienceCycles = patience
			sim, err := NewSim(cfg, d.Graph(), rt, NewUniform(256), 0.25)
			if err != nil {
				b.Fatal(err)
			}
			res, _ := sim.Run()
			if patience == 0 {
				eager = res.AcceptedGbps
			} else {
				patient = res.AcceptedGbps
			}
		}
	}
	b.ReportMetric(eager, "eager_gbps")
	b.ReportMetric(patient, "patient_gbps")
}
