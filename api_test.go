package dsnet

import (
	"strings"
	"testing"
)

// The facade must expose a coherent end-to-end workflow: build, analyze,
// lay out, simulate.
func TestFacadeEndToEnd(t *testing.T) {
	d, err := NewDSN(64, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Graph().N() != 64 {
		t.Fatal("facade DSN wrong size")
	}
	m := d.Graph().AllPairs()
	if !m.Connected || m.Diameter == 0 {
		t.Fatalf("metrics %+v", m)
	}
	r, err := d.Route(3, 40)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() == 0 || r.Path()[len(r.Path())-1] != 40 {
		t.Fatal("facade route broken")
	}
	avg, err := AverageCableLength(d.Graph(), DefaultLayoutConfig())
	if err != nil {
		t.Fatal(err)
	}
	if avg <= 0 {
		t.Fatal("cable length not positive")
	}
	cfg := benchSimConfig()
	rt, err := NewDuatoUpDown(d.Graph(), cfg.VCs)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(cfg, d.Graph(), rt, NewUniform(64*cfg.HostsPerSwitch), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredTotal == 0 {
		t.Fatal("simulation delivered nothing")
	}
}

func TestFacadeTopologies(t *testing.T) {
	if _, err := NewRing(16); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDLNRandom(64, 2, 2, 1); err != nil {
		t.Fatal(err)
	}
	tor, err := NewTorus2DFor(64)
	if err != nil {
		t.Fatal(err)
	}
	if tor.N() != 64 {
		t.Fatal("torus size")
	}
	if _, err := NewKleinberg(8, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := NewHypercube(5); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCCC(3); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDeBruijn(5); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDSNE(60); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDSND(1024, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFlexibleDSN(60, []int{5}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeExperiments(t *testing.T) {
	rows, err := PathSweep([]int{6}, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WritePathTable(&sb, rows, "aspl"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "DSN") {
		t.Fatal("table missing DSN")
	}
	crows, err := CableSweep([]int{6}, []uint64{1}, DefaultLayoutConfig())
	if err != nil {
		t.Fatal(err)
	}
	WriteCableTable(&sb, crows)
	if len(ComparisonNames) != 3 {
		t.Fatal("comparison names")
	}
}

func TestFacadeExtensions(t *testing.T) {
	// Bidirectional DSN.
	bi, err := NewBidirectionalDSN(128)
	if err != nil {
		t.Fatal(err)
	}
	if r, err := bi.Route(3, 100); err != nil || r.Len() == 0 {
		t.Fatalf("BiDSN route: %v", err)
	}
	// Kautz.
	k, err := NewKautz(6)
	if err != nil {
		t.Fatal(err)
	}
	if !k.Connected() {
		t.Fatal("Kautz disconnected")
	}
	// Cost model and placement.
	d, err := NewDSN(128, CeilLog2(128)-1)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLayout(128, DefaultLayoutConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := l.Price(d.Graph(), DefaultCostModel())
	if err != nil || rep.Total <= 0 {
		t.Fatalf("price: %v %v", rep, err)
	}
	if _, base, best, err := l.OptimizePlacement(d.Graph(), 500, 1); err != nil || best > base {
		t.Fatalf("optimize: %v", err)
	}
	// Graph metrics.
	if d.Graph().ClusteringCoefficient() < 0 {
		t.Fatal("clustering")
	}
	if d.Graph().MinEdgeConnectivity() < 2 {
		t.Fatal("connectivity")
	}
	// Local + overshoot-free routing on a DSN-V.
	v, err := NewDSNV(60)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.RouteLocal(5, 40); err != nil {
		t.Fatal(err)
	}
	if _, err := v.RouteNoOvershoot(5, 40); err != nil {
		t.Fatal(err)
	}
	if _, err := v.RoutingReport(4); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSimulatorRouters(t *testing.T) {
	d, err := NewDSN(64, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := benchSimConfig()
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 500, 1000, 1500
	for name, build := range map[string]func() (Router, error){
		"adaptive": func() (Router, error) { return NewDuatoUpDown(d.Graph(), cfg.VCs) },
		"updown":   func() (Router, error) { return NewUpDownOnly(d.Graph(), cfg.VCs) },
		"valiant":  func() (Router, error) { return NewValiant(d.Graph(), cfg.VCs) },
	} {
		rt, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sim, err := NewSim(cfg, d.Graph(), rt, NewUniform(256), 0.02)
		if err != nil {
			t.Fatal(err)
		}
		if res, err := sim.Run(); err != nil || res.DeliveredTotal == 0 {
			t.Fatalf("%s: %v %v", name, res, err)
		}
		worm, err := NewWormSim(withWormBuf(cfg, 20), d.Graph(), rt, NewUniform(256), 0.02)
		if err != nil {
			t.Fatal(err)
		}
		if res, err := worm.Run(); err != nil || res.DeliveredTotal == 0 {
			t.Fatalf("%s wormhole: %v %v", name, res, err)
		}
	}
}

func withWormBuf(cfg SimConfig, buf int) SimConfig {
	cfg.BufFlitsPerVC = buf
	return cfg
}
