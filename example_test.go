package dsnet_test

import (
	"fmt"
	"log"

	"dsnet"
)

// Build a DSN and inspect its small-world properties.
func ExampleNewDSN() {
	d, err := dsnet.NewDSN(64, dsnet.CeilLog2(64)-1)
	if err != nil {
		log.Fatal(err)
	}
	m := d.Graph().AllPairs()
	fmt.Printf("%v: diameter %d, max degree %d\n", d, m.Diameter, d.Graph().MaxDegree())
	// Output: DSN-5-64: diameter 6, max degree 5
}

// Trace the custom three-phase routing algorithm.
func ExampleDSN_Route() {
	d, err := dsnet.NewDSN(64, 5)
	if err != nil {
		log.Fatal(err)
	}
	r, err := d.Route(3, 52)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d hops (bound %d)\n", r.Len(), d.RoutingDiameterBound())
	for _, h := range r.Hops[:2] {
		fmt.Printf("%s: %d -> %d\n", h.Phase, h.From, h.To)
	}
	// Output:
	// 7 hops (bound 22)
	// PRE-WORK: 3 -> 2
	// PRE-WORK: 2 -> 1
}

// Price a topology's cables on the machine-room floorplan.
func ExampleAverageCableLength() {
	d, err := dsnet.NewDSN(1024, 9)
	if err != nil {
		log.Fatal(err)
	}
	avg, err := dsnet.AverageCableLength(d.Graph(), dsnet.DefaultLayoutConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.2f m per link\n", avg)
	// Output: 4.65 m per link
}

// Verify Theorem 3 with the channel dependency graph.
func ExampleCDG() {
	d, err := dsnet.NewDSNE(60)
	if err != nil {
		log.Fatal(err)
	}
	cdg := dsnet.NewCDG()
	for s := 0; s < d.N; s++ {
		for t := 0; t < d.N; t++ {
			r, err := d.Route(s, t)
			if err != nil {
				log.Fatal(err)
			}
			hops := make([]dsnet.ChannelHop, 0, len(r.Hops))
			for _, h := range r.Hops {
				hops = append(hops, dsnet.ChannelHop{From: h.From, To: h.To, Class: uint8(h.Class)})
			}
			cdg.AddRoute(hops)
		}
	}
	fmt.Println("deadlock-free:", cdg.FindCycle() == nil)
	// Output: deadlock-free: true
}

// Run the cycle-accurate simulator at low load.
func ExampleNewSim() {
	d, err := dsnet.NewDSN(64, 5)
	if err != nil {
		log.Fatal(err)
	}
	cfg := dsnet.DefaultSimConfig()
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 2000, 4000, 6000
	rt, err := dsnet.NewDuatoUpDown(d.Graph(), cfg.VCs)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := dsnet.NewSim(cfg, d.Graph(), rt, dsnet.NewUniform(256), 0.02)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("saturated:", res.Saturated)
	// Output: saturated: false
}
