// Command dsnstorm load-tests a dsnserve daemon: it fires thousands of
// concurrent requests in a deterministic cache-hit / cache-miss /
// client-cancelled mix and records what the service did under the
// storm — completions, sheds (429), cancellations, failures, latency
// percentiles and the server's own counters — as BENCH_serve.json.
//
// With no -addr it boots an in-process dsnserve engine on a loopback
// port, so the storm is self-contained (this is how the committed
// benchmark artifact is produced).
//
// Usage:
//
//	dsnstorm                          # in-process server, 1000 requests
//	dsnstorm -requests 5000 -c 64
//	dsnstorm -addr 127.0.0.1:8437     # storm an external daemon
//	dsnstorm -hit 0.5 -cancel 0.2     # shift the request mix
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dsnet/internal/serve"
)

type opts struct {
	addr       string
	requests   int
	clients    int
	hitFrac    float64
	cancelFrac float64
	seed       uint64
	queue      int
	concurrent int
	jobs       int
	out        string
}

func main() {
	var o opts
	flag.StringVar(&o.addr, "addr", "", "dsnserve address (empty: boot an in-process server)")
	flag.IntVar(&o.requests, "requests", 1000, "total requests to fire")
	flag.IntVar(&o.clients, "c", 32, "concurrent client connections")
	flag.Float64Var(&o.hitFrac, "hit", 0.4, "fraction of requests that replay a primed (fully cached) sweep")
	flag.Float64Var(&o.cancelFrac, "cancel", 0.1, "fraction of requests the client abandons after acceptance")
	flag.Uint64Var(&o.seed, "seed", 1, "base seed for the cache-miss request grid")
	flag.IntVar(&o.queue, "queue", 64, "in-process server queue depth")
	flag.IntVar(&o.concurrent, "concurrent", 1, "in-process server job concurrency")
	flag.IntVar(&o.jobs, "j", 0, "in-process server harness workers per job (0: all CPUs)")
	flag.StringVar(&o.out, "o", "BENCH_serve.json", "storm report output path")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "dsnstorm:", err)
		os.Exit(1)
	}
}

// request classes, assigned deterministically from the index.
const (
	classHit = iota
	classMiss
	classCancel
)

// classify deals request i into the hit/miss/cancel mix along the
// golden-ratio low-discrepancy sequence — deterministic, no RNG, the
// classes interleave (no contiguous runs), and the realized mix tracks
// the requested fractions even for small request counts.
func classify(i int, hitFrac, cancelFrac float64) int {
	const phi = 0.6180339887498949
	p := float64(i) * phi
	p -= math.Floor(p)
	switch {
	case p < cancelFrac:
		return classCancel
	case p < cancelFrac+hitFrac:
		return classHit
	default:
		return classMiss
	}
}

// stormBody builds the request body for index i. Every class uses the
// same cheap fault-sweep family (9 graph cells); hits replay the primed
// seed, misses and cancels get per-index seeds so each is novel work.
func stormBody(i, class int, seed uint64) string {
	s := seed
	switch class {
	case classMiss:
		s = seed + 1000 + uint64(i)
	case classCancel:
		s = seed + 2_000_000 + uint64(i)
	}
	return fmt.Sprintf(`{"family":"fault","n":24,"fracs":[0.05],"trials":2,"seed":%d}`, s)
}

// Report is the committed BENCH_serve.json document.
type Report struct {
	Schema     string  `json:"schema"`
	Requests   int     `json:"requests"`
	Clients    int     `json:"clients"`
	HitFrac    float64 `json:"hit_frac"`
	CancelFrac float64 `json:"cancel_frac"`

	Completed int `json:"completed"`
	Deduped   int `json:"deduped"`
	Shed      int `json:"shed"`
	Cancelled int `json:"cancelled"`
	Failed    int `json:"failed"`

	WallMS       float64 `json:"wall_ms"`
	ThroughputRS float64 `json:"throughput_req_s"`
	ShedRate     float64 `json:"shed_rate"`
	LatencyP50MS float64 `json:"latency_p50_ms"`
	LatencyP90MS float64 `json:"latency_p90_ms"`
	LatencyP99MS float64 `json:"latency_p99_ms"`
	LatencyMaxMS float64 `json:"latency_max_ms"`

	Server serve.StatsSnapshot `json:"server"`
}

func run(o opts) error {
	base := o.addr
	if base == "" {
		srv, err := serve.New(serve.Config{
			Jobs: o.jobs, Concurrency: o.concurrent, QueueDepth: o.queue,
			CacheDir: ".dsnstorm-cache",
		})
		if err != nil {
			return err
		}
		defer os.RemoveAll(".dsnstorm-cache")
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		httpSrv := &http.Server{Handler: srv}
		go httpSrv.Serve(ln)
		defer httpSrv.Close()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			srv.Shutdown(ctx)
		}()
		base = ln.Addr().String()
		fmt.Fprintln(os.Stderr, "dsnstorm: in-process dsnserve on", base)
	}
	base = "http://" + strings.TrimPrefix(base, "http://")

	// Prime the hot entry so hit-class requests are pure cache replays.
	if _, _, err := fire(base, stormBody(0, classHit, o.seed), false); err != nil {
		return fmt.Errorf("priming the hot sweep: %w", err)
	}

	fmt.Fprintf(os.Stderr, "dsnstorm: firing %d requests over %d clients (hit %.0f%% / cancel %.0f%% / miss rest)\n",
		o.requests, o.clients, o.hitFrac*100, o.cancelFrac*100)

	var completed, deduped, shed, cancelled, failed atomic.Int64
	latencies := make([]float64, o.requests)
	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < o.clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				class := classify(i, o.hitFrac, o.cancelFrac)
				t0 := time.Now()
				outcome, wasDedup, err := fire(base, stormBody(i, class, o.seed), class == classCancel)
				latencies[i] = float64(time.Since(t0).Microseconds()) / 1e3
				if wasDedup {
					deduped.Add(1)
				}
				switch {
				case err != nil:
					failed.Add(1)
				case outcome == "result":
					completed.Add(1)
				case outcome == "shed":
					shed.Add(1)
				case outcome == "cancelled":
					cancelled.Add(1)
				default:
					failed.Add(1)
				}
			}
		}()
	}
	for i := 0; i < o.requests; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	wall := time.Since(start)

	snap, err := serverStats(base)
	if err != nil {
		return fmt.Errorf("final stats: %w", err)
	}

	sorted := append([]float64(nil), latencies...)
	sort.Float64s(sorted)
	pct := func(p float64) float64 {
		if len(sorted) == 0 {
			return 0
		}
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	rep := Report{
		Schema:   "dsn-serve-bench/v1",
		Requests: o.requests, Clients: o.clients,
		HitFrac: o.hitFrac, CancelFrac: o.cancelFrac,
		Completed: int(completed.Load()), Deduped: int(deduped.Load()),
		Shed: int(shed.Load()), Cancelled: int(cancelled.Load()), Failed: int(failed.Load()),
		WallMS:       float64(wall.Microseconds()) / 1e3,
		ThroughputRS: float64(o.requests) / wall.Seconds(),
		ShedRate:     float64(shed.Load()) / float64(o.requests),
		LatencyP50MS: pct(0.50), LatencyP90MS: pct(0.90),
		LatencyP99MS: pct(0.99), LatencyMaxMS: sorted[len(sorted)-1],
		Server: snap,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(o.out, append(data, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Printf("requests    %d over %d clients in %.1fs (%.0f req/s)\n",
		o.requests, o.clients, wall.Seconds(), rep.ThroughputRS)
	fmt.Printf("outcomes    %d completed (%d deduped), %d shed, %d cancelled, %d failed\n",
		rep.Completed, rep.Deduped, rep.Shed, rep.Cancelled, rep.Failed)
	fmt.Printf("latency ms  p50 %.1f  p90 %.1f  p99 %.1f  max %.1f\n",
		rep.LatencyP50MS, rep.LatencyP90MS, rep.LatencyP99MS, rep.LatencyMaxMS)
	fmt.Printf("server      %d cells executed, %d cached, %d cache errors, %d panics\n",
		snap.CellsExecuted, snap.CellsCached, snap.CacheErrors, snap.Panics)
	fmt.Println("report     ", o.out)

	if rep.Failed > 0 {
		return fmt.Errorf("%d requests failed", rep.Failed)
	}
	return nil
}

// fire sends one request and consumes its NDJSON stream. It returns
// "result", "shed", "cancelled" or the terminal error code. When
// abandon is set the client drops the connection right after the
// accepted event — the cancelled-mid-flight class of the storm.
func fire(base, body string, abandon bool) (outcome string, wasDedup bool, err error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST", base+"/v1/sweep", strings.NewReader(body))
	if err != nil {
		return "", false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		return "shed", false, nil
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Event string `json:"event"`
			Dedup bool   `json:"dedup"`
			Code  string `json:"code"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return "", wasDedup, fmt.Errorf("bad stream line %q: %v", sc.Text(), err)
		}
		switch ev.Event {
		case "accepted":
			wasDedup = ev.Dedup
			if abandon {
				cancel()
				return "cancelled", wasDedup, nil
			}
		case "result":
			return "result", wasDedup, nil
		case "error":
			return ev.Code, wasDedup, fmt.Errorf("server error %s: %s", ev.Code, ev.Error)
		}
	}
	return "", wasDedup, fmt.Errorf("stream ended without terminal event: %v", sc.Err())
}

func serverStats(base string) (serve.StatsSnapshot, error) {
	var snap serve.StatsSnapshot
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&snap)
	return snap, err
}
