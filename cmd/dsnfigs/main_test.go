package main

import "testing"

// Exercise the cheap figure paths end-to-end (graph analysis only; the
// simulation figures are covered by the analysis package tests).
func TestRunGraphFigures(t *testing.T) {
	for _, fig := range []string{"7", "8", "9", "bottleneck"} {
		if err := run(fig, 1, true); err != nil {
			t.Fatalf("fig %s: %v", fig, err)
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run("99", 1, true); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunJSON(t *testing.T) {
	jsonOut = true
	defer func() { jsonOut = false }()
	if err := run("related", 1, true); err != nil {
		t.Fatal(err)
	}
}
