// Command dsnfigs regenerates the paper's figures as plain-text tables.
//
// Usage:
//
//	dsnfigs -fig 7        # diameter vs size
//	dsnfigs -fig 8        # average shortest path vs size
//	dsnfigs -fig 9        # average cable length vs size
//	dsnfigs -fig 10a      # latency vs accepted, uniform traffic
//	dsnfigs -fig 10b      # ... bit reversal
//	dsnfigs -fig 10c      # ... neighboring
//	dsnfigs -fig balance     # custom routing vs up*/down* traffic balance
//	dsnfigs -fig collective  # closed-loop ring-allreduce makespans
//	dsnfigs -fig multipath   # sprayed multipath vs single-path routing
//	dsnfigs -fig diversity   # edge-disjoint paths vs the min-cut bound
//	dsnfigs -fig pareto      # design-space search front: ASPL vs cost
//	dsnfigs -fig all
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dsnet"
)

var (
	jsonOut bool
	// runner executes the ported sweeps: a bounded worker pool with an
	// optional content-addressed cache. Parallel assembly is
	// deterministic, so tables are bit-identical at any -j.
	runner *dsnet.SweepRunner
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to regenerate: 7, 8, 9, 10a, 10b, 10c, balance, bottleneck, faults, faultsim, related, switching, physical, throughput, ladder, collective, multipath, diversity, pareto, all")
		seed    = flag.Uint64("seed", 1, "seed for randomized topologies and simulations")
		quick   = flag.Bool("quick", false, "shorter simulation windows (for smoke runs)")
		jobs    = flag.Int("j", 0, "parallel sweep workers (0: all CPUs)")
		cache   = flag.String("cache", dsnet.DefaultSweepCacheDir, "sweep result cache directory")
		nocache = flag.Bool("nocache", false, "bypass the sweep result cache")
		bench   = flag.String("bench", "", "write machine-readable sweep benchmarks to this JSON file")
	)
	flag.BoolVar(&jsonOut, "json", false, "emit machine-readable JSON instead of tables")
	flag.Parse()
	var err error
	runner, err = dsnet.NewSweepRunner(*jobs, *cache, *nocache)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsnfigs:", err)
		os.Exit(1)
	}
	if err := run(*fig, *seed, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "dsnfigs:", err)
		os.Exit(1)
	}
	if *bench != "" {
		if err := dsnet.NewBenchReport(runner.Bench, runner.JobCount()).WriteFile(*bench); err != nil {
			fmt.Fprintln(os.Stderr, "dsnfigs:", err)
			os.Exit(1)
		}
	}
}

// emitJSON writes one figure's data as a JSON document and reports
// whether JSON mode handled the output.
func emitJSON(figure string, data any) bool {
	if !jsonOut {
		return false
	}
	doc := map[string]any{"figure": figure, "data": data}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "dsnfigs: json:", err)
	}
	return true
}

var sweepSizes = []int{5, 6, 7, 8, 9, 10, 11}

func run(fig string, seed uint64, quick bool) error {
	switch fig {
	case "7", "8":
		rows, err := dsnet.PathSweepWith(runner, sweepSizes, []uint64{seed, seed + 1, seed + 2})
		if err != nil {
			return err
		}
		if emitJSON("fig"+fig, rows) {
			return nil
		}
		if fig == "7" {
			fmt.Println("# Figure 7: diameter (hops) vs network size")
			return dsnet.WritePathTable(os.Stdout, rows, "diameter")
		}
		fmt.Println("# Figure 8: average shortest path length (hops) vs network size")
		return dsnet.WritePathTable(os.Stdout, rows, "aspl")
	case "9":
		rows, err := dsnet.CableSweepWith(runner, sweepSizes, []uint64{seed, seed + 1, seed + 2}, dsnet.DefaultLayoutConfig())
		if err != nil {
			return err
		}
		if emitJSON("fig9", rows) {
			return nil
		}
		fmt.Println("# Figure 9: average cable length (m) vs network size")
		dsnet.WriteCableTable(os.Stdout, rows)
		return nil
	case "10a":
		return fig10("uniform", seed, quick)
	case "10b":
		return fig10("bit-reversal", seed, quick)
	case "10c":
		return fig10("neighboring", seed, quick)
	case "balance":
		return balance(seed, quick)
	case "bottleneck":
		rows, err := dsnet.BottleneckSweep(64, seed)
		if err != nil {
			return err
		}
		if emitJSON("bottleneck", rows) {
			return nil
		}
		fmt.Println("# Edge betweenness (theoretical channel load) at 64 switches")
		dsnet.WriteBottleneckTable(os.Stdout, rows)
		return nil
	case "faults":
		rows, err := dsnet.FaultSweepWith(runner, 64, []float64{0.02, 0.05, 0.10}, 10, seed)
		if err != nil {
			return err
		}
		if emitJSON("faults", rows) {
			return nil
		}
		fmt.Println("# Random link failures at 64 switches (10 trials each)")
		dsnet.WriteFaultTable(os.Stdout, rows)
		return nil
	case "faultsim":
		rows, err := dsnet.DegradationSweepWith(runner, simConfig(seed, quick), 64, []float64{0, 0.02, 0.05, 0.10}, 0.06, seed)
		if err != nil {
			return err
		}
		if emitJSON("faultsim", rows) {
			return nil
		}
		fmt.Println("# Graceful degradation under live link failures at 64 switches, uniform 0.06 flits/cycle/host")
		dsnet.WriteDegradationTable(os.Stdout, rows)
		return nil
	case "switching":
		graphs, err := dsnet.BuildComparison(64, seed)
		if err != nil {
			return err
		}
		pts, err := dsnet.SwitchingComparison(simConfig(seed, quick), graphs["DSN"], "uniform",
			[]float64{0.02, 0.06, 0.10, 0.14, 0.18}, 20)
		if err != nil {
			return err
		}
		if emitJSON("switching", pts) {
			return nil
		}
		fmt.Println("# VCT vs wormhole switching on DSN, uniform traffic (Section V.A regimes)")
		dsnet.WriteSwitchingTable(os.Stdout, pts)
		return nil
	case "throughput":
		var rows []dsnet.ThroughputRow
		for _, pattern := range []string{"uniform", "bit-reversal", "neighboring"} {
			r, err := dsnet.ThroughputComparison(simConfig(seed, quick), pattern, seed)
			if err != nil {
				return err
			}
			rows = append(rows, r...)
		}
		if emitJSON("throughput", rows) {
			return nil
		}
		fmt.Println("# Saturation throughput (Section VII.A metric), 64 switches, adaptive routing")
		dsnet.WriteThroughputTable(os.Stdout, rows)
		return nil
	case "ladder":
		rows, err := dsnet.LadderSweep(1024, dsnet.DefaultLayoutConfig())
		if err != nil {
			return err
		}
		if emitJSON("ladder", rows) {
			return nil
		}
		dsnet.WriteLadderTable(os.Stdout, 1024, rows)
		return nil
	case "physical":
		rows, err := dsnet.PhysicalLatencySweep(sweepSizes, []uint64{seed},
			dsnet.DefaultLayoutConfig(), dsnet.DefaultPhysicalConst())
		if err != nil {
			return err
		}
		if emitJSON("physical", rows) {
			return nil
		}
		fmt.Println("# Analytic end-to-end latency: hops x 100ns + cable x 5ns/m (Section I model)")
		dsnet.WritePhysicalTable(os.Stdout, rows)
		return nil
	case "related":
		rows, err := dsnet.RelatedWork(!quick)
		if err != nil {
			return err
		}
		if emitJSON("related", rows) {
			return nil
		}
		fmt.Println("# Section III related-work diameter-and-degree comparison")
		dsnet.WriteRelatedTable(os.Stdout, rows)
		return nil
	case "collective":
		sizes := []int{64, 256}
		reps := 3
		if quick {
			sizes = []int{64}
			reps = 2
		}
		rows, err := dsnet.CollectiveSweepWith(runner, simConfig(seed, quick), sizes, "allreduce", "ring", 0, reps, seed)
		if err != nil {
			return err
		}
		if emitJSON("collective", rows) {
			return nil
		}
		fmt.Println("# Closed-loop ring allreduce: makespan across seeded rank placements")
		dsnet.WriteCollectiveTable(os.Stdout, rows)
		return nil
	case "multipath":
		// Single-path vs sprayed multipath on the Section VII workloads:
		// hotspot, mid-run link faults, and a ring allreduce. Quick mode
		// shrinks the fabric, not the grid, so every scheme still runs.
		n := 64
		if quick {
			n = 16
		}
		rows, err := dsnet.MultipathSweepWith(runner, simConfig(seed, quick), n, 0.05, 0.05, seed)
		if err != nil {
			return err
		}
		if emitJSON("multipath", rows) {
			return nil
		}
		fmt.Printf("# Multipath spraying vs single-path routing at %d switches, 0.05 flits/cycle/host, 5%% mid-run link faults\n", n)
		dsnet.WriteMultipathTable(os.Stdout, rows)
		return nil
	case "diversity":
		n := 64
		if quick {
			n = 16
		}
		rows, err := dsnet.DiversitySweepWith(runner, n, []int{2, 4, 8}, seed)
		if err != nil {
			return err
		}
		if emitJSON("diversity", rows) {
			return nil
		}
		fmt.Printf("# Path diversity at %d switches: realized edge-disjoint paths vs the Menger min-cut bound\n", n)
		dsnet.WriteDiversityTable(os.Stdout, rows)
		return nil
	case "pareto":
		// Quality/cost plane at 64 switches: the seeded design-space
		// search's Pareto front over the Figure 8 quality axis (ASPL)
		// against the Section VI.B itemized cost. The ASPL objective keeps
		// the figure simulation-free; dsnsearch runs the throughput-aware
		// searches.
		cfg := dsnet.DefaultSearchConfig(64, 7)
		cfg.Seed = seed
		cfg.Budget = 48
		cfg.Eval.Objective = "aspl"
		if quick {
			cfg.Budget = 24
		}
		res, _, err := dsnet.SearchRun(context.Background(), runner, cfg)
		if err != nil {
			return err
		}
		if emitJSON("pareto", res.Front) {
			return nil
		}
		fmt.Printf("# Pareto front: ASPL vs itemized cost at 64 switches, degree <= 7 (seeded search, budget %d)\n", cfg.Budget)
		dsnet.WriteParetoTable(os.Stdout, res.Objective, dsnet.SearchPoints(res.Front))
		return nil
	case "all":
		for _, f := range []string{"7", "8", "9", "10a", "10b", "10c", "balance", "bottleneck", "faults", "faultsim", "related", "switching", "physical", "throughput", "ladder", "collective", "multipath", "diversity", "pareto"} {
			if err := run(f, seed, quick); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
}

func simConfig(seed uint64, quick bool) dsnet.SimConfig {
	cfg := dsnet.DefaultSimConfig()
	cfg.Seed = seed
	if quick {
		cfg.WarmupCycles = 3000
		cfg.MeasureCycles = 6000
		cfg.DrainCycles = 8000
	}
	return cfg
}

func fig10(pattern string, seed uint64, quick bool) error {
	rates := []float64{0.01, 0.02, 0.04, 0.06, 0.08, 0.10, 0.12, 0.14}
	curves, err := dsnet.Fig10CurvesWith(runner, simConfig(seed, quick), pattern, rates, seed)
	if err != nil {
		return err
	}
	if emitJSON("fig10-"+pattern, curves) {
		return nil
	}
	fmt.Printf("# Figure 10 (%s): latency vs accepted traffic, 64 switches, 4 hosts/switch\n", pattern)
	dsnet.WriteLatencyTable(os.Stdout, curves)
	return nil
}

func balance(seed uint64, quick bool) error {
	res, err := dsnet.BalanceComparison(simConfig(seed, quick), 64, 0.01)
	if err != nil {
		return err
	}
	if emitJSON("balance", res) {
		return nil
	}
	fmt.Println("# Traffic balance: DSN custom routing vs deterministic up*/down*")
	fmt.Printf("%-12s %10s %10s %10s %12s\n", "scheme", "cov", "gini", "max/avg", "latency_ns")
	for _, r := range res {
		fmt.Printf("%-12s %10.3f %10.3f %10.2f %12.1f\n", r.Scheme, r.CoV, r.Gini, r.MaxAvg, r.Result.AvgLatencyNS)
	}
	return nil
}
