// Command dsnverify statically certifies deadlock freedom and
// paper-theorem invariants for every registered topology x routing x
// VC-assignment combination: it builds each combination's full channel
// dependency graph, applies the Dally-Seitz acyclicity criterion, and
// evaluates the paper's bounds (degree caps, diameter <= 2.5p+r, route
// length <= 3p+r, DSN-D <= 7p/4) plus routing-table totality as
// executable checks.
//
// Combinations registered as known-negative (the basic DSN whose FINISH
// phase shares the ring without a dedicated channel class) must come
// out cyclic, and the report prints the concrete witness cycle; every
// other combination must certify. The exit status is non-zero the
// moment any combination misses its expectation, which is what CI
// gates on.
//
// Usage:
//
//	dsnverify                 # certify the standard matrix
//	dsnverify -v              # include every check, not just failures
//	dsnverify -o report.txt   # also write the report to a file
//	dsnverify -faults         # append the fault/repair timeline section
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dsnet/internal/core"
	"dsnet/internal/netsim"
	"dsnet/internal/verify"
)

type opts struct {
	verbose bool
	faults  bool
	out     string
}

func main() {
	var o opts
	flag.BoolVar(&o.verbose, "v", false, "print every check result, not just failures")
	flag.BoolVar(&o.faults, "faults", false, "append the fault-degradation timeline section")
	flag.StringVar(&o.out, "o", "", "also write the report to this file")
	flag.Parse()
	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dsnverify:", err)
		os.Exit(1)
	}
}

func run(o opts, stdout io.Writer) error {
	var report strings.Builder
	certs := verify.CertifyAll(verify.DefaultOptions())
	bad := writeMatrix(&report, certs, o.verbose)
	if o.faults {
		if err := writeFaultTimeline(&report, o.verbose); err != nil {
			return err
		}
	}
	fmt.Fprint(stdout, report.String())
	if o.out != "" {
		if err := os.WriteFile(o.out, []byte(report.String()), 0o644); err != nil {
			return err
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d combination(s) missed their expectation", bad)
	}
	return nil
}

// writeMatrix renders the certification matrix and returns how many
// combinations missed their expectation.
func writeMatrix(w *strings.Builder, certs []verify.Certificate, verbose bool) int {
	fmt.Fprintf(w, "dsnverify: certification matrix (%d combinations)\n\n", len(certs))
	fmt.Fprintf(w, "%-42s %-4s %-10s %-9s %-7s %s\n", "COMBINATION", "VCS", "STATUS", "CHANNELS", "DEPS", "VERDICT")
	bad := 0
	for i := range certs {
		c := &certs[i]
		verdict := "pass"
		if !c.OK() {
			verdict = "FAIL"
			bad++
		} else if c.ExpectCyclic {
			verdict = "pass (cyclic as proven)"
		}
		fmt.Fprintf(w, "%-42s %-4d %-10s %-9d %-7d %s\n", c.Combo, c.VCs, c.Status, c.Channels, c.Deps, verdict)
		if c.Err != "" {
			fmt.Fprintf(w, "    error: %s\n", c.Err)
		}
		for _, chk := range c.Checks {
			if !chk.OK || verbose {
				mark := "ok"
				if !chk.OK {
					mark = "FAIL"
				}
				fmt.Fprintf(w, "    %-4s %-34s %s\n", mark, chk.Name, chk.Detail)
			}
		}
		if c.Status == verify.StatusCyclic {
			fmt.Fprintf(w, "    witness: %s\n", c.WitnessString())
			if c.Doc != "" {
				fmt.Fprintf(w, "    why: %s\n", c.Doc)
			}
		}
	}
	fmt.Fprintf(w, "\n%d/%d combinations met their expectation\n", len(certs)-bad, len(certs))
	return bad
}

// writeFaultTimeline certifies the degraded escape network and the DSN
// ring-detour re-sourcing after each event of a fail-then-repair plan,
// and checks that full repair restores the pristine certificates.
func writeFaultTimeline(w *strings.Builder, verbose bool) error {
	d, err := core.New(64, 5)
	if err != nil {
		return err
	}
	g := d.Graph()
	plan := netsim.NewFaultPlan(
		netsim.LinkDown(10, 3),
		netsim.LinkDown(20, 17),
		netsim.SwitchDown(30, 40),
		netsim.SwitchUp(40, 40),
		netsim.LinkUp(50, 17),
		netsim.LinkUp(60, 3),
	)
	fmt.Fprintf(w, "\nfault/repair timeline (%d events on dsn-64)\n\n", len(plan.Events))
	for _, tl := range []struct {
		name    string
		certify func(edgeDead, swDead []bool) verify.Certificate
	}{
		{"updown-escape", func(ed, sd []bool) verify.Certificate {
			return verify.CertifyDegradedUpDown(g, ed, sd, 4)
		}},
		{"dsn-ring-detour", func(ed, sd []bool) verify.Certificate {
			return verify.CertifyDegradedDSN(d, ed, sd)
		}},
	} {
		entries, err := verify.CertifyFaultTimeline(g, plan, tl.certify)
		if err != nil {
			return err
		}
		base := &entries[0].Cert
		for _, en := range entries {
			tag := "baseline"
			if en.Index >= 0 {
				tag = fmt.Sprintf("event %d @%d", en.Index, en.Cycle)
			}
			restored := ""
			if en.Index == len(plan.Events)-1 {
				if verify.SameCertificate(base, &en.Cert) {
					restored = "  [repair restored the pristine certificate]"
				} else {
					restored = "  [REPAIR DID NOT RESTORE THE CERTIFICATE]"
				}
			}
			fmt.Fprintf(w, "%-16s %-14s status=%-9s channels=%-4d deps=%-5d%s\n",
				tl.name, tag, en.Cert.Status, en.Cert.Channels, en.Cert.Deps, restored)
			if verbose {
				for _, chk := range en.Cert.Checks {
					fmt.Fprintf(w, "    %-34s %s\n", chk.Name, chk.Detail)
				}
			}
			if en.Index == len(plan.Events)-1 && !verify.SameCertificate(base, &en.Cert) {
				return fmt.Errorf("%s: repair did not restore the pristine certificate", tl.name)
			}
		}
	}
	return nil
}
