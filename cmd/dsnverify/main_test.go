package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunMatrix exercises the standard matrix: it must pass, list every
// expected combination, and print the witness for the known-negative.
func TestRunMatrix(t *testing.T) {
	var sb strings.Builder
	if err := run(opts{}, &sb); err != nil {
		t.Fatalf("matrix missed expectations: %v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{
		"torus8x8/dor-dateline/2vc",
		"dln-2-2-64/duato-escape/4vc",
		"dsn-e-126/custom/3vc",
		"dsn-v-126/custom/classes",
		"dsn-64/custom/ring-shared-finish",
		"witness:",
		"cyclic as proven",
		"met their expectation",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "FAIL") {
		t.Errorf("report contains failures:\n%s", out)
	}
}

// TestRunReportFile covers -o: the written artifact equals the stdout
// report.
func TestRunReportFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.txt")
	var sb strings.Builder
	if err := run(opts{out: path}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != sb.String() {
		t.Error("report file differs from stdout report")
	}
}

// TestRunFaultTimeline covers -faults: the timeline section appears and
// repair restores both pristine certificates.
func TestRunFaultTimeline(t *testing.T) {
	var sb strings.Builder
	if err := run(opts{faults: true}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"fault/repair timeline",
		"updown-escape",
		"dsn-ring-detour",
		"[repair restored the pristine certificate]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q", want)
		}
	}
	if strings.Contains(out, "DID NOT RESTORE") {
		t.Errorf("repair failed to restore a certificate:\n%s", out)
	}
}
