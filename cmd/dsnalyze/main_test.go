package main

import "testing"

func TestBuildAllTopologies(t *testing.T) {
	cases := []struct {
		topo string
		n, x int
		want int // expected switch count
	}{
		{"dsn", 64, 0, 64},
		{"dsn-e", 60, 0, 60},
		{"dsn-v", 60, 0, 60},
		{"dsn-d", 1024, 0, 1024},
		{"torus", 64, 0, 64},
		{"torus3d", 64, 0, 64},
		{"random", 64, 0, 64},
		{"dln", 64, 0, 64},
		{"ring", 64, 0, 64},
		{"kleinberg", 64, 0, 64},
		{"hypercube", 64, 0, 64},
		{"ccc", 24, 0, 24}, // 3 * 2^3
		{"debruijn", 64, 0, 64},
	}
	for _, c := range cases {
		g, _, err := build(c.topo, c.n, c.x, 1)
		if err != nil {
			t.Errorf("%s: %v", c.topo, err)
			continue
		}
		if g.N() != c.want {
			t.Errorf("%s: N=%d, want %d", c.topo, g.N(), c.want)
		}
	}
}

func TestBuildRejectsBadShapes(t *testing.T) {
	bad := []struct {
		topo string
		n    int
	}{
		{"torus3d", 65},   // not a cube
		{"kleinberg", 65}, // not a square
		{"hypercube", 65}, // not a power of two
		{"ccc", 25},       // not d*2^d
		{"debruijn", 65},  // not a power of two
		{"nonsense", 64},
	}
	for _, c := range bad {
		if _, _, err := build(c.topo, c.n, 0, 1); err == nil {
			t.Errorf("%s n=%d accepted", c.topo, c.n)
		}
	}
}

func TestRunPrintsMetrics(t *testing.T) {
	if err := run("dsn", 64, 0, 1, true, true, false, 4, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunDiversity(t *testing.T) {
	if err := run("ring", 16, 0, 1, false, false, true, 2, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunExport(t *testing.T) {
	path := t.TempDir() + "/g.txt"
	if err := run("ring", 16, 0, 1, false, false, false, 4, path); err != nil {
		t.Fatal(err)
	}
}
