// Command dsnalyze builds an interconnect topology and prints its graph
// metrics: size, degrees, diameter, average shortest path length, and the
// DSN-specific theorem bounds where applicable.
//
// Usage:
//
//	dsnalyze -topo dsn -n 1024
//	dsnalyze -topo torus -n 256
//	dsnalyze -topo random -n 512 -seed 7
//	dsnalyze -topo dsn-e -n 126
//	dsnalyze -topo kleinberg -n 1024
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"dsnet"
)

func main() {
	var (
		topo       = flag.String("topo", "dsn", "topology: dsn, dsn-e, dsn-v, dsn-d, torus, torus3d, random, dln, ring, kleinberg, hypercube, ccc, debruijn")
		n          = flag.Int("n", 64, "number of switches")
		x          = flag.Int("x", 0, "DSN shortcut ladder size (default p-1) / DLN degree")
		seed       = flag.Uint64("seed", 1, "seed for randomized topologies")
		smallWorld = flag.Bool("smallworld", false, "also print clustering coefficient and small-world sigma")
		bottleneck = flag.Bool("bottleneck", false, "also print edge-betweenness load concentration")
		diversity  = flag.Bool("diversity", false, "also print edge-disjoint path diversity against the min-cut bound")
		k          = flag.Int("k", 4, "with -diversity: per-pair path budget (1..15)")
		export     = flag.String("export", "", "write the topology as a dsnet-graph edge list to this file")
	)
	flag.Parse()
	if err := run(*topo, *n, *x, *seed, *smallWorld, *bottleneck, *diversity, *k, *export); err != nil {
		fmt.Fprintln(os.Stderr, "dsnalyze:", err)
		os.Exit(1)
	}
}

func run(topo string, n, x int, seed uint64, smallWorld, bottleneck, diversity bool, k int, export string) error {
	g, d, err := build(topo, n, x, seed)
	if err != nil {
		return err
	}
	if export != "" {
		f, err := os.Create(export)
		if err != nil {
			return err
		}
		if _, err := g.WriteTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "exported %s\n", export)
	}
	m := g.AllPairs()
	fmt.Printf("topology        %s\n", topo)
	fmt.Printf("switches        %d\n", g.N())
	fmt.Printf("links           %d\n", g.M())
	fmt.Printf("degree          min %d / avg %.2f / max %d\n", g.MinDegree(), g.AverageDegree(), g.MaxDegree())
	hist := g.DegreeHistogram()
	degs := make([]int, 0, len(hist))
	for deg := range hist { // dsnlint:ok maprange keys sorted below
		degs = append(degs, deg)
	}
	sort.Ints(degs)
	for _, deg := range degs {
		fmt.Printf("  degree %-2d     %d switches\n", deg, hist[deg])
	}
	fmt.Printf("connected       %v\n", m.Connected)
	fmt.Printf("diameter        %d hops\n", m.Diameter)
	fmt.Printf("avg path        %.3f hops\n", m.ASPL)
	if d != nil {
		fmt.Printf("p (levels)      %d\n", d.P)
		fmt.Printf("r (n mod p)     %d\n", d.R)
		fmt.Printf("x (ladder)      %d\n", d.X)
		if d.BoundsApply() {
			fmt.Printf("thm1 diameter   <= %.1f (measured %d)\n", d.DiameterBound(), m.Diameter)
			fmt.Printf("thm1 routing    <= %d hops\n", d.RoutingDiameterBound())
		}
	}
	if smallWorld {
		fmt.Printf("clustering      %.4f\n", g.ClusteringCoefficient())
		fmt.Printf("small-world     sigma = %.2f (>1 indicates small-world structure)\n", g.SmallWorldIndex())
	}
	if bottleneck {
		bc := g.EdgeBetweenness()
		var mean, max float64
		for _, v := range bc {
			mean += v
			if v > max {
				max = v
			}
		}
		mean /= float64(len(bc))
		fmt.Printf("betweenness     mean %.4f / max %.4f (max/mean %.2f)\n", mean, max, max/mean)
	}
	if diversity {
		tab, err := dsnet.BuildMultipathTable(g, k)
		if err != nil {
			return err
		}
		div, err := dsnet.PathDiversityFor(g, k, tab)
		if err != nil {
			return err
		}
		fmt.Printf("min cut         min %d / mean %.2f over %d pairs\n", div.MinCutMin, div.MinCutMean, div.Pairs)
		fmt.Printf("disjoint paths  min %d / mean %.2f at k=%d (spraying realizes %.0f%% of the min-cut headroom)\n",
			div.DisjointMin, div.DisjointMean, k, 100*div.DisjointMean/div.MinCutMean)
	}
	return nil
}

func build(topo string, n, x int, seed uint64) (*dsnet.Graph, *dsnet.DSN, error) {
	switch topo {
	case "dsn":
		if x == 0 {
			x = dsnet.CeilLog2(n) - 1
		}
		d, err := dsnet.NewDSN(n, x)
		if err != nil {
			return nil, nil, err
		}
		return d.Graph(), d, nil
	case "dsn-e":
		d, err := dsnet.NewDSNE(n)
		if err != nil {
			return nil, nil, err
		}
		return d.Graph(), d, nil
	case "dsn-v":
		d, err := dsnet.NewDSNV(n)
		if err != nil {
			return nil, nil, err
		}
		return d.Graph(), d, nil
	case "dsn-d":
		if x == 0 {
			x = 2
		}
		d, err := dsnet.NewDSND(n, x)
		if err != nil {
			return nil, nil, err
		}
		return d.Graph(), d, nil
	case "torus":
		t, err := dsnet.NewTorus2DFor(n)
		if err != nil {
			return nil, nil, err
		}
		return t.Graph(), nil, nil
	case "torus3d":
		side := 2
		for side*side*side < n {
			side++
		}
		if side*side*side != n {
			return nil, nil, fmt.Errorf("n=%d is not a cube", n)
		}
		t, err := dsnet.NewTorus3D(side, side, side)
		if err != nil {
			return nil, nil, err
		}
		return t.Graph(), nil, nil
	case "random":
		g, err := dsnet.NewDLNRandom(n, 2, 2, seed)
		return g, nil, err
	case "dln":
		if x == 0 {
			x = 4
		}
		g, err := dsnet.NewDLN(n, x)
		return g, nil, err
	case "ring":
		g, err := dsnet.NewRing(n)
		return g, nil, err
	case "kleinberg":
		side := 1
		for side*side < n {
			side++
		}
		if side*side != n {
			return nil, nil, fmt.Errorf("n=%d is not a square", n)
		}
		k, err := dsnet.NewKleinberg(side, 1, seed)
		if err != nil {
			return nil, nil, err
		}
		return k.Graph(), nil, nil
	case "hypercube":
		d := 0
		for 1<<uint(d) < n {
			d++
		}
		if 1<<uint(d) != n {
			return nil, nil, fmt.Errorf("n=%d is not a power of two", n)
		}
		g, err := dsnet.NewHypercube(d)
		return g, nil, err
	case "ccc":
		d := 3
		for d<<uint(d) < n {
			d++
		}
		if d<<uint(d) != n {
			return nil, nil, fmt.Errorf("n=%d is not d*2^d for any d", n)
		}
		g, err := dsnet.NewCCC(d)
		return g, nil, err
	case "debruijn":
		m := 2
		for 1<<uint(m) < n {
			m++
		}
		if 1<<uint(m) != n {
			return nil, nil, fmt.Errorf("n=%d is not a power of two", n)
		}
		g, err := dsnet.NewDeBruijn(m)
		return g, nil, err
	default:
		return nil, nil, fmt.Errorf("unknown topology %q", topo)
	}
}
