// Command dsnlint runs the determinism linter over the simulator
// packages. The cycle-accurate simulator's results are pinned
// byte-for-byte across machines, so wall-clock reads, draws from the
// global math/rand source, and map-iteration-order dependence are
// reproducibility bugs; dsnlint finds them statically.
//
// Usage:
//
//	dsnlint                                  # lint the simulator packages
//	dsnlint internal/netsim internal/lint    # lint specific directories
//	dsnlint -list                            # describe the analyzers
//
// Directories are resolved relative to the working directory, which
// must be inside the module so that intra-module imports type-check.
// Exits non-zero if any hazard survives waivers
// ("// dsnlint:ok <analyzer> <reason>" on the offending line).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dsnet/internal/lint"
)

// DefaultDirs are the packages whose determinism CI enforces.
var DefaultDirs = []string{
	"internal/netsim", "internal/collectives", "internal/traffic",
	"internal/analysis", "internal/chaos", "internal/harness",
	"internal/search", "cmd/dsnsearch",
}

type opts struct {
	list bool
	dirs []string
}

func main() {
	var o opts
	flag.BoolVar(&o.list, "list", false, "describe the analyzers and exit")
	flag.Parse()
	o.dirs = flag.Args()
	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dsnlint:", err)
		os.Exit(1)
	}
}

func run(o opts, w io.Writer) error {
	if o.list {
		for _, a := range lint.All {
			fmt.Fprintf(w, "%-12s %s\n", a.Name, a.Doc)
		}
		return nil
	}
	dirs := o.dirs
	if len(dirs) == 0 {
		dirs = DefaultDirs
	}
	diags, err := lint.LintDirs(dirs, lint.All)
	if err != nil {
		return err
	}
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
	if n := len(diags); n > 0 {
		return fmt.Errorf("%d determinism hazard(s)", n)
	}
	fmt.Fprintf(w, "dsnlint: %d package(s) clean\n", len(dirs))
	return nil
}
