// Command dsnlint runs the determinism and concurrency-discipline
// linter over the whole module. The simulator's results are pinned
// byte-for-byte across machines, so wall-clock reads, draws from the
// global math/rand source, map-iteration-order dependence, and any
// taint flow from such a source into a serialized sink are
// reproducibility bugs; the concurrency analyzers (ctxflow, lockhold,
// goleak) keep the serve/harness machinery cancellable and
// deadlock-free. dsnlint finds all of it statically.
//
// Usage:
//
//	dsnlint                                  # lint every package in the module
//	dsnlint internal/netsim internal/lint    # lint specific directories
//	dsnlint -list                            # describe the analyzers
//	dsnlint -json                            # machine-readable report on stdout
//	dsnlint -o dsnlint-report.json           # also write the JSON report to a file
//
// Directories are resolved relative to the working directory, which
// must be the module root (or inside it) so that intra-module imports
// type-check. Exits non-zero if any hazard survives waivers
// ("// dsnlint:ok <analyzer> <reason>" on the offending line).
//
// Benchmark drivers legitimately read the wall clock — their job is
// measuring it — so cmd/dsnbench and cmd/dsnstorm are exempt from the
// walltime and detflow analyzers (and only those).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"dsnet/internal/lint"
)

// exempt maps directories to the analyzers not run there. The list is
// deliberately short and the reasons must stay obvious: benchmark and
// load-generation drivers measure wall time as their purpose, so
// walltime sources (and the taint flows out of them) are their output,
// not a hazard.
var exempt = map[string][]string{
	"cmd/dsnbench": {"walltime", "detflow"},
	"cmd/dsnstorm": {"walltime", "detflow"},
}

type opts struct {
	list    bool
	jsonOut bool
	outFile string
	dirs    []string
}

func main() {
	var o opts
	flag.BoolVar(&o.list, "list", false, "describe the analyzers and exit")
	flag.BoolVar(&o.jsonOut, "json", false, "print the report as JSON instead of text")
	flag.StringVar(&o.outFile, "o", "", "also write the JSON report to this file")
	flag.Parse()
	o.dirs = flag.Args()
	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dsnlint:", err)
		os.Exit(1)
	}
}

// jsonFinding is one diagnostic in the machine-readable report.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport is the -json / -o payload. It is deterministic: findings
// are sorted by file/line/column/analyzer and no timestamps appear.
type jsonReport struct {
	Packages  int           `json:"packages"`
	Analyzers []string      `json:"analyzers"`
	Findings  []jsonFinding `json:"findings"`
}

func buildReport(dirs []string, diags []lint.Diagnostic) jsonReport {
	rep := jsonReport{
		Packages: len(dirs),
		Findings: []jsonFinding{}, // [] not null when clean
	}
	for _, a := range lint.All {
		rep.Analyzers = append(rep.Analyzers, a.Name)
	}
	for _, d := range diags {
		rep.Findings = append(rep.Findings, jsonFinding{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return rep
}

func run(o opts, w io.Writer) error {
	if o.list {
		for _, a := range lint.All {
			fmt.Fprintf(w, "%-12s %s\n", a.Name, a.Doc)
		}
		return nil
	}
	dirs := o.dirs
	if len(dirs) == 0 {
		var err error
		dirs, err = lint.DiscoverDirs(".")
		if err != nil {
			return err
		}
	}
	targets := make([]lint.Target, len(dirs))
	for i, d := range dirs {
		targets[i] = lint.Target{Dir: d, Skip: exempt[d]}
	}
	diags, err := lint.LintTargets(targets, lint.All)
	if err != nil {
		return err
	}

	if o.jsonOut || o.outFile != "" {
		blob, err := json.MarshalIndent(buildReport(dirs, diags), "", "  ")
		if err != nil {
			return err
		}
		blob = append(blob, '\n')
		if o.outFile != "" {
			if err := os.WriteFile(o.outFile, blob, 0o644); err != nil {
				return err
			}
		}
		if o.jsonOut {
			if _, err := w.Write(blob); err != nil {
				return err
			}
		}
	}
	if !o.jsonOut {
		for _, d := range diags {
			fmt.Fprintln(w, d)
		}
	}
	if n := len(diags); n > 0 {
		return fmt.Errorf("%d determinism/concurrency hazard(s)", n)
	}
	if !o.jsonOut {
		fmt.Fprintf(w, "dsnlint: %d package(s) clean\n", len(dirs))
	}
	return nil
}
