package main

import (
	"strings"
	"testing"
)

// TestRunSimulatorPackages lints the default target packages (resolved
// from the repo root, two levels up from this test's working
// directory); they must be clean.
func TestRunSimulatorPackages(t *testing.T) {
	var sb strings.Builder
	o := opts{dirs: []string{"../../internal/netsim", "../../internal/collectives", "../../internal/traffic"}}
	if err := run(o, &sb); err != nil {
		t.Fatalf("simulator packages dirty: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "clean") {
		t.Errorf("unexpected output: %q", sb.String())
	}
}

// TestRunDirtyFixture pins the failure mode: the lint fixture with
// planted hazards must make dsnlint exit non-zero and print positioned
// findings.
func TestRunDirtyFixture(t *testing.T) {
	var sb strings.Builder
	o := opts{dirs: []string{"../../internal/lint/testdata/src/dirty"}}
	err := run(o, &sb)
	if err == nil {
		t.Fatal("dirty fixture passed the linter")
	}
	if !strings.Contains(err.Error(), "hazard") {
		t.Errorf("unexpected error: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"[walltime]", "[globalrand]", "[maprange]", "dirty.go:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunList covers the analyzer listing.
func TestRunList(t *testing.T) {
	var sb strings.Builder
	if err := run(opts{list: true}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, a := range []string{"walltime", "globalrand", "maprange"} {
		if !strings.Contains(sb.String(), a) {
			t.Errorf("listing missing %s", a)
		}
	}
}
