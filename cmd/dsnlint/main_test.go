package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestRunSimulatorPackages lints the default target packages (resolved
// from the repo root, two levels up from this test's working
// directory); they must be clean.
func TestRunSimulatorPackages(t *testing.T) {
	var sb strings.Builder
	o := opts{dirs: []string{"../../internal/netsim", "../../internal/collectives", "../../internal/traffic"}}
	if err := run(o, &sb); err != nil {
		t.Fatalf("simulator packages dirty: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "clean") {
		t.Errorf("unexpected output: %q", sb.String())
	}
}

// TestRunDirtyFixture pins the failure mode: the lint fixture with
// planted hazards must make dsnlint exit non-zero and print positioned
// findings.
func TestRunDirtyFixture(t *testing.T) {
	var sb strings.Builder
	o := opts{dirs: []string{"../../internal/lint/testdata/src/dirty"}}
	err := run(o, &sb)
	if err == nil {
		t.Fatal("dirty fixture passed the linter")
	}
	if !strings.Contains(err.Error(), "hazard") {
		t.Errorf("unexpected error: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"[walltime]", "[globalrand]", "[maprange]", "dirty.go:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunList covers the analyzer listing: the full v2 suite.
func TestRunList(t *testing.T) {
	var sb strings.Builder
	if err := run(opts{list: true}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, a := range []string{"walltime", "globalrand", "maprange", "detflow", "ctxflow", "lockhold", "goleak"} {
		if !strings.Contains(sb.String(), a) {
			t.Errorf("listing missing %s", a)
		}
	}
}

// TestRunJSONReport pins the machine-readable output: valid JSON, the
// full analyzer roster, and findings sorted by file/line/column.
func TestRunJSONReport(t *testing.T) {
	var sb strings.Builder
	o := opts{jsonOut: true, dirs: []string{"../../internal/lint/testdata/src/dirty"}}
	if err := run(o, &sb); err == nil {
		t.Fatal("dirty fixture passed the linter")
	}
	var rep jsonReport
	if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, sb.String())
	}
	if len(rep.Analyzers) != 7 {
		t.Errorf("analyzers: got %v, want all 7", rep.Analyzers)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("no findings in report")
	}
	sorted := sort.SliceIsSorted(rep.Findings, func(i, j int) bool {
		a, b := rep.Findings[i], rep.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column <= b.Column
	})
	if !sorted {
		t.Errorf("findings not sorted: %+v", rep.Findings)
	}
	for _, f := range rep.Findings {
		if f.File == "" || f.Line == 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
}

// TestRunReportFile covers -o: the report file is written even when
// the run is clean, with an empty (not null) findings array.
func TestRunReportFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dsnlint-report.json")
	var sb strings.Builder
	o := opts{outFile: path, dirs: []string{"../../internal/netsim"}}
	if err := run(o, &sb); err != nil {
		t.Fatalf("netsim dirty: %v\n%s", err, sb.String())
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep jsonReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("report file is not JSON: %v", err)
	}
	if rep.Findings == nil || len(rep.Findings) != 0 {
		t.Errorf("clean run should carry an empty findings array, got %+v", rep.Findings)
	}
	if rep.Packages != 1 {
		t.Errorf("packages: got %d, want 1", rep.Packages)
	}
}
