// Command dsnchaos runs seeded chaos campaigns against the
// cycle-accurate simulators with the runtime invariant monitors armed
// (progress watchdog, flit conservation, hop-TTL from the 3p+r routing
// diameter theorem, head-of-line starvation, post-repair
// reconvergence). Any campaign that trips a monitor can be shrunk to a
// minimal reproducer and written out as a regression artifact for the
// checked-in corpus under internal/chaos/testdata/repro.
//
// Usage:
//
//	dsnchaos -topo torus,dsn -campaigns 10
//	dsnchaos -topo dsn-v-custom -switching wormhole -seed 7
//	dsnchaos -topo dsn-basic-unsafe -shrink -o repros/
//	dsnchaos -replay internal/chaos/testdata/repro/unsafe-basic-dsn-deadlock.repro
//
// The exit status is 0 only when every verdict is clean, so a bounded
// invocation doubles as a CI smoke gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dsnet"
	"dsnet/internal/harness"
)

type opts struct {
	topos        string
	n            int
	seed         uint64
	campaigns    int
	rate         float64
	switching    string
	fstart, fend int64
	shrink       bool
	out          string
	replay       string
}

// runner executes scenario cells on a bounded worker pool with an
// optional content-addressed cache; verdicts are reported in campaign
// order regardless of execution order.
var runner *harness.Runner

func main() {
	var o opts
	flag.StringVar(&o.topos, "topo", "torus,dsn,dsn-v-custom",
		"comma-separated chaos targets: "+strings.Join(dsnet.ChaosTargetNames, ", "))
	flag.IntVar(&o.n, "n", 36, "number of switches (36 satisfies every DSN variant)")
	flag.Uint64Var(&o.seed, "seed", 1, "campaign seed (scenarios and simulations derive from it)")
	flag.IntVar(&o.campaigns, "campaigns", 5, "scenarios per target")
	flag.Float64Var(&o.rate, "rate", 0, "offered load in flits/cycle/host (0: the target's default)")
	flag.StringVar(&o.switching, "switching", "vct", "simulator engine: vct or wormhole")
	flag.Int64Var(&o.fstart, "faultstart", 0, "fault injection window start cycle (0: after warmup)")
	flag.Int64Var(&o.fend, "faultend", 0, "fault injection window end cycle (0: end of measurement)")
	flag.BoolVar(&o.shrink, "shrink", false, "delta-debug each failing campaign to a minimal reproducer")
	flag.StringVar(&o.out, "o", "", "directory to write shrunk reproducer artifacts into (with -shrink)")
	flag.StringVar(&o.replay, "replay", "", "replay one .repro artifact and verify it still trips its monitor")
	jobs := flag.Int("j", 0, "parallel scenario workers (0: all CPUs)")
	cache := flag.String("cache", harness.DefaultCacheDir, "sweep result cache directory")
	nocache := flag.Bool("nocache", false, "bypass the sweep result cache")
	bench := flag.String("bench", "", "write machine-readable sweep benchmarks to this JSON file")
	flag.Parse()
	var err error
	runner, err = harness.NewRunner(*jobs, *cache, *nocache)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsnchaos:", err)
		os.Exit(1)
	}
	runErr := run(o)
	if *bench != "" {
		if err := harness.NewReport(runner.Bench, runner.JobCount()).WriteFile(*bench); err != nil {
			fmt.Fprintln(os.Stderr, "dsnchaos:", err)
			os.Exit(1)
		}
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "dsnchaos:", runErr)
		os.Exit(1)
	}
}

func run(o opts) error {
	if o.replay != "" {
		return replay(o.replay)
	}
	if o.switching != "vct" && o.switching != "wormhole" {
		return fmt.Errorf("unknown switching mode %q", o.switching)
	}
	if o.campaigns < 1 {
		return fmt.Errorf("-campaigns %d must be >= 1", o.campaigns)
	}
	violations := 0
	for _, name := range strings.Split(o.topos, ",") {
		name = strings.TrimSpace(name)
		bad, err := campaign(o, name)
		if err != nil {
			return err
		}
		violations += bad
	}
	if violations > 0 {
		return fmt.Errorf("%d scenario(s) tripped a monitor", violations)
	}
	return nil
}

func campaign(o opts, name string) (int, error) {
	// buildEngine rebuilds the deterministic (target, options) pair so
	// every scenario cell is independent — fault-aware routers mutate
	// their tables during a run, so engines must not be shared across
	// parallel cells.
	buildEngine := func() (*dsnet.ChaosEngine, error) {
		t, err := dsnet.ChaosTarget(name, o.n)
		if err != nil {
			return nil, err
		}
		opt := dsnet.ChaosDefaultOptions()
		opt.Wormhole = o.switching == "wormhole"
		if o.rate > 0 {
			opt.Rate = o.rate
		} else if t.SafeRate > 0 {
			opt.Rate = t.SafeRate
		}
		return dsnet.NewChaosEngine(t, opt)
	}
	e, err := buildEngine()
	if err != nil {
		return 0, err
	}
	w := e.Opt.FaultWindow()
	if o.fstart > 0 || o.fend > 0 {
		w = dsnet.ChaosWindow{Start: o.fstart, End: o.fend}
	}
	scs, err := dsnet.ChaosCampaign(e.T.Graph, e.T.Layout, w, o.seed, o.campaigns)
	if err != nil {
		return 0, err
	}
	fmt.Printf("# chaos campaign: %s / %s, %d switches, seed %d, %d scenarios + golden\n",
		name, e.Opt.EngineName(), e.T.Graph.N(), o.seed, len(scs))

	optFP := harness.Fingerprint(fmt.Sprintf("%+v", e.Opt))
	goldenKey := harness.NewKey("chaos-golden")
	goldenKey.Topo, goldenKey.Switching = name, e.Opt.EngineName()
	goldenKey.N, goldenKey.Rate, goldenKey.Seed = e.T.Graph.N(), e.Opt.Rate, e.Opt.Cfg.Seed
	goldenKey.Params = []harness.Param{harness.P("opt", optFP)}
	goldens, err := harness.Run(runner, "chaos-golden", []harness.Cell[dsnet.ChaosVerdict]{
		{Key: goldenKey, Run: func() (dsnet.ChaosVerdict, error) {
			ge, err := buildEngine()
			if err != nil {
				return dsnet.ChaosVerdict{}, err
			}
			return ge.GoldenVerdict()
		}},
	})
	if err != nil {
		return 0, err
	}
	gv := goldens[0]
	// Seed the serially-held engine too: shrinking re-applies the
	// reconvergence check, which needs the golden baseline.
	e.SetGolden(gv.Result, gv.Monitor)

	cells := make([]harness.Cell[dsnet.ChaosVerdict], 0, len(scs))
	for _, sc := range scs {
		key := harness.NewKey("chaos")
		key.Topo, key.Switching = name, e.Opt.EngineName()
		key.N, key.Seed = o.n, sc.Seed
		key.Params = []harness.Param{
			harness.P("kind", sc.Kind.String()),
			harness.P("plan", harness.FaultPlanFingerprint(sc.Plan)),
			harness.P("opt", optFP),
			harness.Pd("golden", gv.Result.DeliveredTotal),
		}
		cells = append(cells, harness.Cell[dsnet.ChaosVerdict]{Key: key, Run: func() (dsnet.ChaosVerdict, error) {
			ge, err := buildEngine()
			if err != nil {
				return dsnet.ChaosVerdict{}, err
			}
			ge.SetGolden(gv.Result, gv.Monitor)
			return ge.RunScenario(sc)
		}})
	}
	verdicts, err := harness.Run(runner, "chaos", cells)
	if err != nil {
		return 0, err
	}

	bad := 0
	n, err := report(o, e, gv)
	bad += n
	if err != nil {
		return bad, err
	}
	for _, v := range verdicts {
		n, err := report(o, e, v)
		bad += n
		if err != nil {
			return bad, err
		}
	}
	return bad, nil
}

// report prints one verdict and, on a violation with -shrink, emits the
// minimal reproducer. It returns 1 when the verdict is a violation.
func report(o opts, e *dsnet.ChaosEngine, v dsnet.ChaosVerdict) (int, error) {
	fmt.Println(v)
	if v.OK() {
		return 0, nil
	}
	if !o.shrink {
		return 1, nil
	}
	shrunk, runs, err := e.ShrinkPlan(v.Scenario.Plan, v.Monitor)
	if err != nil {
		return 1, err
	}
	fmt.Printf("  shrunk %d -> %d events in %d runs\n", len(v.Scenario.Plan.Events), len(shrunk.Events), runs)
	r := &dsnet.ChaosRepro{
		Target: v.Target, N: e.T.Graph.N(), Engine: v.Engine,
		Rate: e.Opt.Rate, Seed: e.Opt.Cfg.Seed,
		Watchdog: e.Opt.Cfg.WatchdogCycles, HOL: e.Opt.HOLBound,
		TTL: e.T.HopTTL > 0, Monitor: v.Monitor, Events: shrunk.Events,
	}
	if o.out == "" {
		os.Stdout.Write(r.Marshal())
		return 1, nil
	}
	if err := os.MkdirAll(o.out, 0o755); err != nil {
		return 1, err
	}
	file := filepath.Join(o.out, fmt.Sprintf("%s-%s-%s-%s-seed%d.repro", v.Target, v.Engine, v.Scenario.Kind, v.Monitor, v.Scenario.Seed))
	if err := os.WriteFile(file, r.Marshal(), 0o644); err != nil {
		return 1, err
	}
	fmt.Printf("  wrote %s\n", file)
	return 1, nil
}

func replay(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	r, err := dsnet.ParseChaosRepro(data)
	if err != nil {
		return err
	}
	if err := r.Verify(); err != nil {
		return err
	}
	fmt.Printf("%s: reproduced %s on %s/%s\n", filepath.Base(path), r.Monitor, r.Target, r.Engine)
	return nil
}
