// Command dsnchaos runs seeded chaos campaigns against the
// cycle-accurate simulators with the runtime invariant monitors armed
// (progress watchdog, flit conservation, hop-TTL from the 3p+r routing
// diameter theorem, head-of-line starvation, post-repair
// reconvergence). Any campaign that trips a monitor can be shrunk to a
// minimal reproducer and written out as a regression artifact for the
// checked-in corpus under internal/chaos/testdata/repro.
//
// Usage:
//
//	dsnchaos -topo torus,dsn -campaigns 10
//	dsnchaos -topo dsn-v-custom -switching wormhole -seed 7
//	dsnchaos -topo dsn-basic-unsafe -shrink -o repros/
//	dsnchaos -replay internal/chaos/testdata/repro/unsafe-basic-dsn-deadlock.repro
//
// The exit status is 0 only when every verdict is clean, so a bounded
// invocation doubles as a CI smoke gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dsnet"
)

type opts struct {
	topos        string
	n            int
	seed         uint64
	campaigns    int
	rate         float64
	switching    string
	fstart, fend int64
	shrink       bool
	out          string
	replay       string
}

func main() {
	var o opts
	flag.StringVar(&o.topos, "topo", "torus,dsn,dsn-v-custom",
		"comma-separated chaos targets: "+strings.Join(dsnet.ChaosTargetNames, ", "))
	flag.IntVar(&o.n, "n", 36, "number of switches (36 satisfies every DSN variant)")
	flag.Uint64Var(&o.seed, "seed", 1, "campaign seed (scenarios and simulations derive from it)")
	flag.IntVar(&o.campaigns, "campaigns", 5, "scenarios per target")
	flag.Float64Var(&o.rate, "rate", 0, "offered load in flits/cycle/host (0: the target's default)")
	flag.StringVar(&o.switching, "switching", "vct", "simulator engine: vct or wormhole")
	flag.Int64Var(&o.fstart, "faultstart", 0, "fault injection window start cycle (0: after warmup)")
	flag.Int64Var(&o.fend, "faultend", 0, "fault injection window end cycle (0: end of measurement)")
	flag.BoolVar(&o.shrink, "shrink", false, "delta-debug each failing campaign to a minimal reproducer")
	flag.StringVar(&o.out, "o", "", "directory to write shrunk reproducer artifacts into (with -shrink)")
	flag.StringVar(&o.replay, "replay", "", "replay one .repro artifact and verify it still trips its monitor")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "dsnchaos:", err)
		os.Exit(1)
	}
}

func run(o opts) error {
	if o.replay != "" {
		return replay(o.replay)
	}
	if o.switching != "vct" && o.switching != "wormhole" {
		return fmt.Errorf("unknown switching mode %q", o.switching)
	}
	if o.campaigns < 1 {
		return fmt.Errorf("-campaigns %d must be >= 1", o.campaigns)
	}
	violations := 0
	for _, name := range strings.Split(o.topos, ",") {
		name = strings.TrimSpace(name)
		bad, err := campaign(o, name)
		if err != nil {
			return err
		}
		violations += bad
	}
	if violations > 0 {
		return fmt.Errorf("%d scenario(s) tripped a monitor", violations)
	}
	return nil
}

func campaign(o opts, name string) (int, error) {
	t, err := dsnet.ChaosTarget(name, o.n)
	if err != nil {
		return 0, err
	}
	opt := dsnet.ChaosDefaultOptions()
	opt.Wormhole = o.switching == "wormhole"
	if o.rate > 0 {
		opt.Rate = o.rate
	} else if t.SafeRate > 0 {
		opt.Rate = t.SafeRate
	}
	e, err := dsnet.NewChaosEngine(t, opt)
	if err != nil {
		return 0, err
	}
	w := opt.FaultWindow()
	if o.fstart > 0 || o.fend > 0 {
		w = dsnet.ChaosWindow{Start: o.fstart, End: o.fend}
	}
	scs, err := dsnet.ChaosCampaign(t.Graph, e.T.Layout, w, o.seed, o.campaigns)
	if err != nil {
		return 0, err
	}
	fmt.Printf("# chaos campaign: %s / %s, %d switches, seed %d, %d scenarios + golden\n",
		name, opt.EngineName(), t.Graph.N(), o.seed, len(scs))
	bad := 0
	gv, err := e.GoldenVerdict()
	if err != nil {
		return bad, err
	}
	n, err := report(o, e, gv)
	bad += n
	if err != nil {
		return bad, err
	}
	for _, sc := range scs {
		v, err := e.RunScenario(sc)
		if err != nil {
			return bad, err
		}
		n, err := report(o, e, v)
		bad += n
		if err != nil {
			return bad, err
		}
	}
	return bad, nil
}

// report prints one verdict and, on a violation with -shrink, emits the
// minimal reproducer. It returns 1 when the verdict is a violation.
func report(o opts, e *dsnet.ChaosEngine, v dsnet.ChaosVerdict) (int, error) {
	fmt.Println(v)
	if v.OK() {
		return 0, nil
	}
	if !o.shrink {
		return 1, nil
	}
	shrunk, runs, err := e.ShrinkPlan(v.Scenario.Plan, v.Monitor)
	if err != nil {
		return 1, err
	}
	fmt.Printf("  shrunk %d -> %d events in %d runs\n", len(v.Scenario.Plan.Events), len(shrunk.Events), runs)
	r := &dsnet.ChaosRepro{
		Target: v.Target, N: e.T.Graph.N(), Engine: v.Engine,
		Rate: e.Opt.Rate, Seed: e.Opt.Cfg.Seed,
		Watchdog: e.Opt.Cfg.WatchdogCycles, HOL: e.Opt.HOLBound,
		TTL: e.T.HopTTL > 0, Monitor: v.Monitor, Events: shrunk.Events,
	}
	if o.out == "" {
		os.Stdout.Write(r.Marshal())
		return 1, nil
	}
	if err := os.MkdirAll(o.out, 0o755); err != nil {
		return 1, err
	}
	file := filepath.Join(o.out, fmt.Sprintf("%s-%s-%s-%s-seed%d.repro", v.Target, v.Engine, v.Scenario.Kind, v.Monitor, v.Scenario.Seed))
	if err := os.WriteFile(file, r.Marshal(), 0o644); err != nil {
		return 1, err
	}
	fmt.Printf("  wrote %s\n", file)
	return 1, nil
}

func replay(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	r, err := dsnet.ParseChaosRepro(data)
	if err != nil {
		return err
	}
	if err := r.Verify(); err != nil {
		return err
	}
	fmt.Printf("%s: reproduced %s on %s/%s\n", filepath.Base(path), r.Monitor, r.Target, r.Engine)
	return nil
}
