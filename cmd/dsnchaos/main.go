// Command dsnchaos runs seeded chaos campaigns against the
// cycle-accurate simulators with the runtime invariant monitors armed
// (progress watchdog, flit conservation, hop-TTL from the 3p+r routing
// diameter theorem, head-of-line starvation, post-repair
// reconvergence). Any campaign that trips a monitor can be shrunk to a
// minimal reproducer and written out as a regression artifact for the
// checked-in corpus under internal/chaos/testdata/repro.
//
// Usage:
//
//	dsnchaos -topo torus,dsn -campaigns 10
//	dsnchaos -topo dsn-v-custom -switching wormhole -seed 7
//	dsnchaos -topo dsn-basic-unsafe -shrink -o repros/
//	dsnchaos -replay internal/chaos/testdata/repro/unsafe-basic-dsn-deadlock.repro
//	dsnchaos -replay repro.repro -recover -drain
//
// Exit status (documented in README.md, stable for CI):
//
//	0  every verdict clean
//	1  operational error (bad flags, unknown target, I/O)
//	2  at least one monitor violation (conservation, hop-ttl,
//	   hol-wait, reconvergence, recovery)
//	3  at least one progress-watchdog trip (the fabric wedged —
//	   netsim.ErrNoProgress); takes precedence over 2
//
// so a bounded invocation doubles as a CI smoke gate that can tell a
// wedged fabric apart from a softer invariant violation.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dsnet"
	"dsnet/internal/harness"
)

type opts struct {
	topos        string
	n            int
	seed         uint64
	campaigns    int
	rate         float64
	switching    string
	fstart, fend int64
	shrink       bool
	out          string
	replay       string
	recover      bool
	stall        int64
	drain        bool
	// Multipath arming: every listed target's router is swapped for the
	// k-shortest-path spraying router over the same graph, so campaigns
	// (and -replay -recover) exercise dead-link re-spray under chaos.
	multipath bool
	k         int
	selector  string
}

// recoveryConfig resolves the -recover/-stallthreshold/-drain flags
// into a detector tuning (the corpus replay defaults unless overridden).
func (o opts) recoveryConfig() dsnet.RecoveryConfig {
	rc := dsnet.ChaosRecoveryConfig()
	if o.stall > 0 {
		rc.StallThresholdCycles = o.stall
	}
	rc.DrainOnFault = o.drain
	return rc
}

// Exit codes (see the package comment).
const (
	exitClean     = 0
	exitError     = 1
	exitViolation = 2
	exitWatchdog  = 3
)

// runner executes scenario cells on a bounded worker pool with an
// optional content-addressed cache; verdicts are reported in campaign
// order regardless of execution order.
var runner *harness.Runner

func main() {
	var o opts
	flag.StringVar(&o.topos, "topo", "torus,dsn,dsn-v-custom",
		"comma-separated chaos targets: "+strings.Join(dsnet.ChaosTargetNames, ", "))
	flag.IntVar(&o.n, "n", 36, "number of switches (36 satisfies every DSN variant)")
	flag.Uint64Var(&o.seed, "seed", 1, "campaign seed (scenarios and simulations derive from it)")
	flag.IntVar(&o.campaigns, "campaigns", 5, "scenarios per target")
	flag.Float64Var(&o.rate, "rate", 0, "offered load in flits/cycle/host (0: the target's default)")
	flag.StringVar(&o.switching, "switching", "vct", "simulator engine: vct or wormhole")
	flag.Int64Var(&o.fstart, "faultstart", 0, "fault injection window start cycle (0: after warmup)")
	flag.Int64Var(&o.fend, "faultend", 0, "fault injection window end cycle (0: end of measurement)")
	flag.BoolVar(&o.shrink, "shrink", false, "delta-debug each failing campaign to a minimal reproducer")
	flag.StringVar(&o.out, "o", "", "directory to write shrunk reproducer artifacts into (with -shrink)")
	flag.StringVar(&o.replay, "replay", "", "replay one .repro artifact and verify it still trips its monitor")
	flag.BoolVar(&o.recover, "recover", false, "arm runtime deadlock detection and recovery (with -replay: expect a clean run on both engines instead)")
	flag.Int64Var(&o.stall, "stallthreshold", 0, "stall cycles before a packet is suspected deadlocked (0: recovery default)")
	flag.BoolVar(&o.drain, "drain", false, "with -recover: drain in-flight traffic before swapping routing tables at each fault epoch")
	flag.BoolVar(&o.multipath, "multipath", false, "arm every target with the k-shortest-path spraying router (with -replay -recover: replay against the armed target)")
	flag.IntVar(&o.k, "k", 4, "with -multipath: edge-disjoint paths per pair (1..15)")
	flag.StringVar(&o.selector, "selector", "adaptive", "with -multipath: path selector: "+strings.Join(dsnet.SelectorNames, ", "))
	jobs := flag.Int("j", 0, "parallel scenario workers (0: all CPUs)")
	cache := flag.String("cache", harness.DefaultCacheDir, "sweep result cache directory")
	nocache := flag.Bool("nocache", false, "bypass the sweep result cache")
	bench := flag.String("bench", "", "write machine-readable sweep benchmarks to this JSON file")
	flag.Parse()
	var err error
	runner, err = harness.NewRunner(*jobs, *cache, *nocache)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsnchaos:", err)
		os.Exit(1)
	}
	code, runErr := run(o)
	if *bench != "" {
		if err := harness.NewReport(runner.Bench, runner.JobCount()).WriteFile(*bench); err != nil {
			fmt.Fprintln(os.Stderr, "dsnchaos:", err)
			os.Exit(exitError)
		}
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "dsnchaos:", runErr)
	}
	os.Exit(code)
}

// tally folds verdict outcomes into the final exit code: watchdog trips
// outrank other monitor violations, which outrank a clean run.
type tally struct {
	watchdog, other int
}

func (t *tally) add(v dsnet.ChaosVerdict) {
	switch v.Monitor {
	case "":
	case dsnet.MonitorWatchdog:
		t.watchdog++
	default:
		t.other++
	}
}

func (t *tally) code() int {
	switch {
	case t.watchdog > 0:
		return exitWatchdog
	case t.other > 0:
		return exitViolation
	}
	return exitClean
}

func run(o opts) (int, error) {
	if o.replay != "" {
		return replay(o)
	}
	if o.switching != "vct" && o.switching != "wormhole" {
		return exitError, fmt.Errorf("unknown switching mode %q", o.switching)
	}
	if o.campaigns < 1 {
		return exitError, fmt.Errorf("-campaigns %d must be >= 1", o.campaigns)
	}
	var t tally
	for _, name := range strings.Split(o.topos, ",") {
		name = strings.TrimSpace(name)
		if err := campaign(o, name, &t); err != nil {
			return exitError, err
		}
	}
	if bad := t.watchdog + t.other; bad > 0 {
		return t.code(), fmt.Errorf("%d scenario(s) tripped a monitor (%d watchdog)", bad, t.watchdog)
	}
	return exitClean, nil
}

func campaign(o opts, name string, t *tally) error {
	// buildEngine rebuilds the deterministic (target, options) pair so
	// every scenario cell is independent — fault-aware routers mutate
	// their tables during a run, so engines must not be shared across
	// parallel cells.
	buildEngine := func() (*dsnet.ChaosEngine, error) {
		t, err := dsnet.ChaosTarget(name, o.n)
		if err != nil {
			return nil, err
		}
		opt := dsnet.ChaosDefaultOptions()
		if o.multipath {
			sel, err := dsnet.ParseSelector(o.selector)
			if err != nil {
				return nil, err
			}
			if t, err = dsnet.ChaosArmMultipath(t, o.k, sel, opt.Cfg.VCs, o.seed); err != nil {
				return nil, err
			}
		}
		opt.Wormhole = o.switching == "wormhole"
		if o.rate > 0 {
			opt.Rate = o.rate
		} else if t.SafeRate > 0 {
			opt.Rate = t.SafeRate
		}
		if o.recover {
			opt.Recover = true
			opt.Recovery = o.recoveryConfig()
		}
		return dsnet.NewChaosEngine(t, opt)
	}
	e, err := buildEngine()
	if err != nil {
		return err
	}
	w := e.Opt.FaultWindow()
	if o.fstart > 0 || o.fend > 0 {
		w = dsnet.ChaosWindow{Start: o.fstart, End: o.fend}
	}
	scs, err := dsnet.ChaosCampaign(e.T.Graph, e.T.Layout, w, o.seed, o.campaigns)
	if err != nil {
		return err
	}
	fmt.Printf("# chaos campaign: %s / %s, %d switches, seed %d, %d scenarios + golden\n",
		e.T.Name, e.Opt.EngineName(), e.T.Graph.N(), o.seed, len(scs))

	// e.T.Name carries the multipath arming suffix, keeping armed and
	// single-path campaigns apart in the result cache.
	optFP := harness.Fingerprint(fmt.Sprintf("%+v", e.Opt))
	goldenKey := harness.NewKey("chaos-golden")
	goldenKey.Topo, goldenKey.Switching = e.T.Name, e.Opt.EngineName()
	goldenKey.N, goldenKey.Rate, goldenKey.Seed = e.T.Graph.N(), e.Opt.Rate, e.Opt.Cfg.Seed
	goldenKey.Params = []harness.Param{harness.P("opt", optFP)}
	goldens, err := harness.Run(runner, "chaos-golden", []harness.Cell[dsnet.ChaosVerdict]{
		{Key: goldenKey, Run: func() (dsnet.ChaosVerdict, error) {
			ge, err := buildEngine()
			if err != nil {
				return dsnet.ChaosVerdict{}, err
			}
			return ge.GoldenVerdict()
		}},
	})
	if err != nil {
		return err
	}
	gv := goldens[0]
	// Seed the serially-held engine too: shrinking re-applies the
	// reconvergence check, which needs the golden baseline.
	e.SetGolden(gv.Result, gv.Monitor)

	cells := make([]harness.Cell[dsnet.ChaosVerdict], 0, len(scs))
	for _, sc := range scs {
		key := harness.NewKey("chaos")
		key.Topo, key.Switching = e.T.Name, e.Opt.EngineName()
		key.N, key.Seed = o.n, sc.Seed
		key.Params = []harness.Param{
			harness.P("kind", sc.Kind.String()),
			harness.P("plan", harness.FaultPlanFingerprint(sc.Plan)),
			harness.P("opt", optFP),
			harness.Pd("golden", gv.Result.DeliveredTotal),
		}
		cells = append(cells, harness.Cell[dsnet.ChaosVerdict]{Key: key, Run: func() (dsnet.ChaosVerdict, error) {
			ge, err := buildEngine()
			if err != nil {
				return dsnet.ChaosVerdict{}, err
			}
			ge.SetGolden(gv.Result, gv.Monitor)
			return ge.RunScenario(sc)
		}})
	}
	verdicts, err := harness.Run(runner, "chaos", cells)
	if err != nil {
		return err
	}

	if err := report(o, e, gv, t); err != nil {
		return err
	}
	for _, v := range verdicts {
		if err := report(o, e, v, t); err != nil {
			return err
		}
	}
	return nil
}

// report prints one verdict, folds it into the exit-code tally, and on
// a violation with -shrink emits the minimal reproducer.
func report(o opts, e *dsnet.ChaosEngine, v dsnet.ChaosVerdict, t *tally) error {
	fmt.Println(v)
	t.add(v)
	if v.OK() || !o.shrink {
		return nil
	}
	shrunk, runs, err := e.ShrinkPlan(v.Scenario.Plan, v.Monitor)
	if err != nil {
		return err
	}
	fmt.Printf("  shrunk %d -> %d events in %d runs\n", len(v.Scenario.Plan.Events), len(shrunk.Events), runs)
	r := &dsnet.ChaosRepro{
		Target: v.Target, N: e.T.Graph.N(), Engine: v.Engine,
		Rate: e.Opt.Rate, Seed: e.Opt.Cfg.Seed,
		Watchdog: e.Opt.Cfg.WatchdogCycles, HOL: e.Opt.HOLBound,
		TTL: e.T.HopTTL > 0, Monitor: v.Monitor, Events: shrunk.Events,
	}
	if o.out == "" {
		os.Stdout.Write(r.Marshal())
		return nil
	}
	if err := os.MkdirAll(o.out, 0o755); err != nil {
		return err
	}
	file := filepath.Join(o.out, fmt.Sprintf("%s-%s-%s-%s-seed%d.repro", v.Target, v.Engine, v.Scenario.Kind, v.Monitor, v.Scenario.Seed))
	if err := os.WriteFile(file, r.Marshal(), 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", file)
	return nil
}

func replay(o opts) (int, error) {
	data, err := os.ReadFile(o.replay)
	if err != nil {
		return exitError, err
	}
	r, err := dsnet.ParseChaosRepro(data)
	if err != nil {
		return exitError, err
	}
	if o.recover {
		return replayRecovered(o, r)
	}
	if o.multipath {
		return exitError, fmt.Errorf("-replay -multipath requires -recover (an armed replay is judged by recovery accounting, not by reproducing the recorded monitor)")
	}
	if err := r.Verify(); err != nil {
		// The repro is expected to trip its recorded monitor; running
		// clean (or tripping the wrong one) is an operational failure
		// of the corpus, not a fabric verdict.
		return exitError, err
	}
	fmt.Printf("%s: reproduced %s on %s/%s\n", filepath.Base(o.replay), r.Monitor, r.Target, r.Engine)
	return exitClean, nil
}

// replayRecovered replays one reproducer with the runtime deadlock
// detector armed, on both engines (and with drain-before-reconfigure
// when -drain is set): a scenario that wedges the fabric without
// recovery must now complete with zero unresolved deadlocks. The exit
// code classifies any residual violation like a campaign would.
func replayRecovered(o opts, r *dsnet.ChaosRepro) (int, error) {
	var t tally
	for _, engine := range []string{"vct", "wormhole"} {
		var v dsnet.ChaosVerdict
		var err error
		if o.multipath {
			var sel dsnet.MultipathSelector
			if sel, err = dsnet.ParseSelector(o.selector); err != nil {
				return exitError, err
			}
			v, err = r.RunRecoveredArmed(engine, o.drain, o.k, sel)
		} else {
			v, err = r.RunRecovered(engine, o.drain)
		}
		if err != nil {
			return exitError, err
		}
		t.add(v)
		status := "clean"
		if !v.OK() {
			status = fmt.Sprintf("VIOLATION %s: %s", v.Monitor, v.Detail)
		}
		fmt.Printf("%s: recovered replay on %s/%s: %s (detected %d, recovered %d, released %d, lost %d, aborted flits %d)\n",
			filepath.Base(o.replay), v.Target, engine, status,
			v.Result.DeadlocksDetected, v.Result.DeadlocksRecovered,
			v.Result.DeadlocksReleased, v.Result.DeadlocksLost, v.Result.AbortedFlits)
	}
	if bad := t.watchdog + t.other; bad > 0 {
		return t.code(), fmt.Errorf("%d recovered replay(s) still tripped a monitor", bad)
	}
	return exitClean, nil
}
