// Command dsnlayout prices the cabling of the comparison topologies under
// the Section VI.B machine-room floorplan, for a single size or across
// the paper's sweep.
//
// Usage:
//
//	dsnlayout -n 1024            # one size, detailed per-topology stats
//	dsnlayout -sweep             # Figure 9 table (32..2048 switches)
package main

import (
	"flag"
	"fmt"
	"os"

	"dsnet"
)

func main() {
	var (
		n        = flag.Int("n", 1024, "number of switches")
		sweep    = flag.Bool("sweep", false, "print the full Figure 9 sweep")
		seed     = flag.Uint64("seed", 1, "seed for the RANDOM topology")
		perC     = flag.Int("per-cabinet", 16, "switches per cabinet")
		optimize = flag.Int("optimize", 0, "anneal the switch placement for this many iterations (the layout optimization of reference [7])")
	)
	flag.Parse()
	cfg := dsnet.DefaultLayoutConfig()
	cfg.SwitchesPerCabinet = *perC
	if err := run(*n, *sweep, *seed, cfg, *optimize); err != nil {
		fmt.Fprintln(os.Stderr, "dsnlayout:", err)
		os.Exit(1)
	}
}

func run(n int, sweep bool, seed uint64, cfg dsnet.LayoutConfig, optimize int) error {
	if sweep {
		rows, err := dsnet.CableSweep([]int{5, 6, 7, 8, 9, 10, 11}, []uint64{seed}, cfg)
		if err != nil {
			return err
		}
		fmt.Println("# Figure 9: average cable length (m) vs network size")
		dsnet.WriteCableTable(os.Stdout, rows)
		return nil
	}
	graphs, err := dsnet.BuildComparison(n, seed)
	if err != nil {
		return err
	}
	l, err := dsnet.NewLayout(n, cfg)
	if err != nil {
		return err
	}
	w, d := l.FloorDims()
	fmt.Printf("switches %d  cabinets %d  grid %dx%d  floor %.1fm x %.1fm\n\n",
		n, l.Cabinets, l.Rows, l.PerRow, w, d)
	fmt.Printf("%-8s %8s %10s %10s %10s %10s\n", "topo", "links", "avg (m)", "max (m)", "total (m)", "inter")
	for _, name := range dsnet.ComparisonNames {
		g := graphs[name]
		s, err := l.Cables(g)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %8d %10.2f %10.2f %10.0f %10d\n",
			name, g.M(), s.Average, s.Max, s.Total, s.InterLinks)
	}
	if optimize > 0 {
		fmt.Printf("\nplacement optimization (%d annealing iterations):\n", optimize)
		for _, name := range dsnet.ComparisonNames {
			_, base, best, err := l.OptimizePlacement(graphs[name], optimize, seed)
			if err != nil {
				return err
			}
			fmt.Printf("%-8s %10.0f m -> %10.0f m  (-%.1f%%)\n", name, base, best, (1-best/base)*100)
		}
	}
	return nil
}
