package main

import (
	"testing"

	"dsnet"
)

func TestRunSingleSize(t *testing.T) {
	if err := run(256, false, 1, dsnet.DefaultLayoutConfig(), 5000); err != nil {
		t.Fatal(err)
	}
}

func TestRunSweep(t *testing.T) {
	if err := run(0, true, 1, dsnet.DefaultLayoutConfig(), 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadSize(t *testing.T) {
	// 7 switches cannot form a 2-D torus.
	if err := run(7, false, 1, dsnet.DefaultLayoutConfig(), 0); err == nil {
		t.Fatal("prime switch count accepted")
	}
}
