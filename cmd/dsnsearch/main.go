// Command dsnsearch runs the seeded topology design-space search: a
// quality/cost Pareto optimizer over ring-plus-shortcut genomes.
//
// The search seeds from the paper's own families (DSN-x, DSN-D-k, DLN
// loops, the RANDOM DLN-2-2) plus Kleinberg-α span distributions and
// multiplicative circulants, then explores with an evolutionary (μ+λ)
// loop or simulated annealing. Every candidate is Dally–Seitz certified
// before it is simulated; every evaluation is a content-addressed sweep
// cell, so searches replay from the cache and the emitted archive is
// bit-identical across -j values and resumed runs.
//
// Usage:
//
//	dsnsearch -n 64 -degree 7 -budget 64 -objective combined -o front.json
//	dsnsearch -n 64 -degree 7 -budget 64 -resume -o front2.json   # replay from cache
//	dsnsearch -n 32 -objective aspl -driver anneal -quick
//	dsnsearch -n 64 -budget 64 -replay -bench BENCH_search.json   # run + cached replay gate
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"dsnet"
)

func main() {
	var (
		n         = flag.Int("n", 64, "number of switches")
		degree    = flag.Int("degree", 7, "port budget per switch (0: unbounded; the ring uses 2)")
		seed      = flag.Uint64("seed", 1, "search seed: drives every proposal draw")
		budget    = flag.Int("budget", 64, "total candidate evaluations, seeds included")
		objective = flag.String("objective", "combined", fmt.Sprintf("quality axis: %v", dsnet.SearchObjectives))
		driver    = flag.String("driver", "evolve", fmt.Sprintf("search driver: %v", dsnet.SearchDrivers))
		mu        = flag.Int("mu", 8, "evolutionary survivors per generation")
		lambda    = flag.Int("lambda", 8, "offspring per generation (also the annealer batch size)")
		crossp    = flag.Float64("crossp", 0.25, "crossover probability per offspring")
		alpha     = flag.Float64("alpha", 1.0, "mutation span bias: new shortcuts draw span d with P(d) ~ d^-alpha")
		pattern   = flag.String("pattern", "uniform", "traffic pattern for the throughput probe")
		simSeed   = flag.Uint64("simseed", 1, "simulator seed used inside every evaluation")
		quick     = flag.Bool("quick", false, "shorter simulation windows (for smoke runs)")
		jobs      = flag.Int("j", 0, "parallel evaluation workers (0: all CPUs)")
		cache     = flag.String("cache", dsnet.DefaultSweepCacheDir, "sweep result cache directory")
		nocache   = flag.Bool("nocache", false, "bypass the sweep result cache")
		resume    = flag.Bool("resume", false, "require a warm cache: fail unless some evaluations replay from it")
		replay    = flag.Bool("replay", false, "after the run, replay the whole search from the cache and gate on byte-identity")
		out       = flag.String("o", "", "write the full result document (JSON) to this file")
		bench     = flag.String("bench", "", "write machine-readable sweep benchmarks to this JSON file")
		jsonOut   = flag.Bool("json", false, "emit the result document as JSON on stdout instead of tables")
	)
	flag.Parse()
	if err := run(*n, *degree, *seed, *budget, *objective, *driver, *mu, *lambda,
		*crossp, *alpha, *pattern, *simSeed, *quick, *jobs, *cache, *nocache,
		*resume, *replay, *out, *bench, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "dsnsearch:", err)
		os.Exit(1)
	}
}

func run(n, degree int, seed uint64, budget int, objective, driver string,
	mu, lambda int, crossp, alpha float64, pattern string, simSeed uint64,
	quick bool, jobs int, cache string, nocache, resume, replay bool,
	out, bench string, jsonOut bool) error {
	if (resume || replay) && nocache {
		return fmt.Errorf("-resume/-replay need the cache; drop -nocache")
	}
	cfg := dsnet.DefaultSearchConfig(n, degree)
	cfg.Seed = seed
	cfg.Budget = budget
	cfg.Driver = driver
	cfg.Mu = mu
	cfg.Lambda = lambda
	cfg.CrossoverP = crossp
	cfg.Alpha = alpha
	cfg.Eval.Objective = objective
	cfg.Eval.Pattern = pattern
	cfg.Eval.Sim.Seed = simSeed
	if quick {
		cfg.Eval = cfg.Eval.Quick()
	}

	runner, err := dsnet.NewSweepRunner(jobs, cache, nocache)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, st, err := dsnet.SearchRun(ctx, runner, cfg)
	if err != nil {
		return err
	}
	if resume && st.Cached == 0 {
		return fmt.Errorf("-resume: no evaluation replayed from the cache at %s (cold cache, or different parameters)", cache)
	}
	var check *dsnet.BenchReplayCheck
	if replay {
		res2, st2, err := dsnet.SearchRun(ctx, runner, cfg)
		if err != nil {
			return fmt.Errorf("replay: %w", err)
		}
		a, _ := json.Marshal(res)
		b, _ := json.Marshal(res2)
		check = &dsnet.BenchReplayCheck{Executed: st2.Executed, Cached: st2.Cached, Identical: string(a) == string(b)}
		if !check.Identical {
			return fmt.Errorf("replay: cached re-run diverged from the fresh result")
		}
		if st2.Executed != 0 {
			return fmt.Errorf("replay: cached re-run executed %d cells, want 0", st2.Executed)
		}
	}

	if out != "" {
		if err := writeResult(out, res); err != nil {
			return err
		}
	}
	if bench != "" {
		report := dsnet.NewBenchReport(runner.Bench, runner.JobCount())
		report.Grid = fmt.Sprintf("search/%s/%s/n%d", driver, objective, n)
		report.Replay = check
		if err := report.WriteFile(bench); err != nil {
			return err
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	report(os.Stdout, res, st)
	return nil
}

// writeResult persists the deterministic result document. The encoding
// carries no timing or cache statistics, so two runs of the same search
// — serial, parallel, or replayed — produce byte-identical files.
func writeResult(path string, res dsnet.SearchResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func report(w *os.File, res dsnet.SearchResult, st dsnet.SearchRunStats) {
	fmt.Fprintf(w, "# dsnsearch: %s/%s at n=%d degree<=%d, seed %d, budget %d\n",
		res.Driver, res.Objective, res.N, res.MaxDegree, res.Seed, res.Budget)
	fmt.Fprintf(w, "# evaluated %d (%d unique), %d executed, %d from cache\n",
		res.Evaluated, res.Unique, st.Executed, st.Cached)
	for _, r := range res.Rejected {
		fmt.Fprintf(w, "# rejected %-20s %d\n", r.Reason, r.Count)
	}
	fmt.Fprintf(w, "\n# seeds (%d)\n", len(res.Seeds))
	dsnet.WriteParetoTable(w, res.Objective, dsnet.SearchPoints(res.Seeds))
	fmt.Fprintf(w, "\n# pareto front (%d, all certified)\n", len(res.Front))
	dsnet.WriteParetoTable(w, res.Objective, dsnet.SearchPoints(res.Front))
	if res.Best != nil {
		fmt.Fprintf(w, "\n# best (scalarized): %s from %s — %s\n",
			res.Best.Eval.Fingerprint[:12], res.Best.Origin, res.Best.Eval.CertDetail)
	}
}
