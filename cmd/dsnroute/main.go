// Command dsnroute traces routes through DSN topologies and reports
// routing statistics: the custom three-phase algorithm (centralized,
// switch-local, and overshoot-free variants), plus the aggregate
// RoutingReport against the Theorem 1(c) bound.
//
// Usage:
//
//	dsnroute -n 64 -s 3 -t 52                 # trace one pair
//	dsnroute -n 64 -s 3 -t 52 -algo noovershoot
//	dsnroute -n 60 -variant e -s 7 -t 44 -algo local
//	dsnroute -n 1024 -report                  # aggregate statistics
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"dsnet"
)

func main() {
	var (
		n       = flag.Int("n", 64, "number of switches")
		variant = flag.String("variant", "basic", "DSN variant: basic, e, v, d")
		s       = flag.Int("s", 0, "source switch")
		t       = flag.Int("t", 1, "destination switch")
		algo    = flag.String("algo", "custom", "algorithm: custom, local, noovershoot, short (DSN-D only)")
		report  = flag.Bool("report", false, "print aggregate routing statistics instead of one trace")
		stride  = flag.Int("stride", 1, "sample every stride-th pair in -report mode")
	)
	flag.Parse()
	if err := run(*n, *variant, *s, *t, *algo, *report, *stride); err != nil {
		fmt.Fprintln(os.Stderr, "dsnroute:", err)
		os.Exit(1)
	}
}

func run(n int, variant string, s, t int, algo string, report bool, stride int) error {
	var d *dsnet.DSN
	var err error
	switch variant {
	case "basic":
		d, err = dsnet.NewDSN(n, dsnet.CeilLog2(n)-1)
	case "e":
		d, err = dsnet.NewDSNE(n)
	case "v":
		d, err = dsnet.NewDSNV(n)
	case "d":
		d, err = dsnet.NewDSND(n, 2)
	default:
		return fmt.Errorf("unknown variant %q", variant)
	}
	if err != nil {
		return err
	}
	if report {
		rep, err := d.RoutingReport(stride)
		if err != nil {
			return err
		}
		fmt.Printf("%v routing report (stride %d)\n%s\n", d, stride, rep)
		fmt.Println("channel-class hops:")
		classes := make([]dsnet.LinkClass, 0, len(rep.ClassHops))
		for class := range rep.ClassHops { // dsnlint:ok maprange keys sorted below
			classes = append(classes, class)
		}
		sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
		for _, class := range classes {
			fmt.Printf("  %-12s %d\n", class, rep.ClassHops[class])
		}
		return nil
	}
	var route *dsnet.Route
	switch algo {
	case "custom":
		route, err = d.Route(s, t)
	case "local":
		route, err = d.RouteLocal(s, t)
	case "noovershoot":
		route, err = d.RouteNoOvershoot(s, t)
	case "short":
		route, err = d.RouteShortAware(s, t)
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}
	if err != nil {
		return err
	}
	sp := d.Graph().ShortestDist(s, t)
	fmt.Printf("%v %s route %d -> %d: %d hops (shortest %d, bound %d)\n",
		d, algo, s, t, route.Len(), sp, d.RoutingDiameterBound())
	for _, h := range route.Hops {
		fmt.Printf("  %-12s %4d -> %-4d level %d -> %d via %s\n",
			h.Phase, h.From, h.To, d.LevelOf(int(h.From)), d.LevelOf(int(h.To)), h.Class)
	}
	return nil
}
