// Command dsnroute traces routes through DSN topologies and reports
// routing statistics: the custom three-phase algorithm (centralized,
// switch-local, and overshoot-free variants), plus the aggregate
// RoutingReport against the Theorem 1(c) bound.
//
// Usage:
//
//	dsnroute -n 64 -s 3 -t 52                 # trace one pair
//	dsnroute -n 64 -s 3 -t 52 -algo noovershoot
//	dsnroute -n 60 -variant e -s 7 -t 44 -algo local
//	dsnroute -n 1024 -report                  # aggregate statistics
//	dsnroute -n 64 -s 3 -t 52 -multipath -k 4 # canonical sprayed path set
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"dsnet"
)

func main() {
	var (
		n       = flag.Int("n", 64, "number of switches")
		variant = flag.String("variant", "basic", "DSN variant: basic, e, v, d")
		s       = flag.Int("s", 0, "source switch")
		t       = flag.Int("t", 1, "destination switch")
		algo    = flag.String("algo", "custom", "algorithm: custom, local, noovershoot, short (DSN-D only)")
		report  = flag.Bool("report", false, "print aggregate routing statistics instead of one trace")
		stride  = flag.Int("stride", 1, "sample every stride-th pair in -report mode")
		mp      = flag.Bool("multipath", false, "print the pair's canonical edge-disjoint path set instead of a single route")
		k       = flag.Int("k", 4, "with -multipath: edge-disjoint paths per pair (1..15)")
	)
	flag.Parse()
	if *mp {
		if err := runMultipath(*n, *variant, *s, *t, *k); err != nil {
			fmt.Fprintln(os.Stderr, "dsnroute:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*n, *variant, *s, *t, *algo, *report, *stride); err != nil {
		fmt.Fprintln(os.Stderr, "dsnroute:", err)
		os.Exit(1)
	}
}

func buildDSN(n int, variant string) (*dsnet.DSN, error) {
	switch variant {
	case "basic":
		return dsnet.NewDSN(n, dsnet.CeilLog2(n)-1)
	case "e":
		return dsnet.NewDSNE(n)
	case "v":
		return dsnet.NewDSNV(n)
	case "d":
		return dsnet.NewDSND(n, 2)
	}
	return nil, fmt.Errorf("unknown variant %q", variant)
}

func run(n int, variant string, s, t int, algo string, report bool, stride int) error {
	d, err := buildDSN(n, variant)
	if err != nil {
		return err
	}
	if report {
		rep, err := d.RoutingReport(stride)
		if err != nil {
			return err
		}
		fmt.Printf("%v routing report (stride %d)\n%s\n", d, stride, rep)
		fmt.Println("channel-class hops:")
		classes := make([]dsnet.LinkClass, 0, len(rep.ClassHops))
		for class := range rep.ClassHops { // dsnlint:ok maprange keys sorted below
			classes = append(classes, class)
		}
		sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
		for _, class := range classes {
			fmt.Printf("  %-12s %d\n", class, rep.ClassHops[class])
		}
		return nil
	}
	var route *dsnet.Route
	switch algo {
	case "custom":
		route, err = d.Route(s, t)
	case "local":
		route, err = d.RouteLocal(s, t)
	case "noovershoot":
		route, err = d.RouteNoOvershoot(s, t)
	case "short":
		route, err = d.RouteShortAware(s, t)
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}
	if err != nil {
		return err
	}
	sp := d.Graph().ShortestDist(s, t)
	fmt.Printf("%v %s route %d -> %d: %d hops (shortest %d, bound %d)\n",
		d, algo, s, t, route.Len(), sp, d.RoutingDiameterBound())
	for _, h := range route.Hops {
		fmt.Printf("  %-12s %4d -> %-4d level %d -> %d via %s\n",
			h.Phase, h.From, h.To, d.LevelOf(int(h.From)), d.LevelOf(int(h.To)), h.Class)
	}
	return nil
}

// runMultipath prints the pair's canonical edge-disjoint path set — the
// exact routes the spraying router loads into packet headers — plus the
// Menger min-cut bound that caps how many disjoint paths exist at all.
func runMultipath(n int, variant string, s, t, k int) error {
	d, err := buildDSN(n, variant)
	if err != nil {
		return err
	}
	g := d.Graph()
	if s < 0 || s >= g.N() || t < 0 || t >= g.N() || s == t {
		return fmt.Errorf("need distinct switches in [0,%d): s=%d t=%d", g.N(), s, t)
	}
	if k < 1 || k > dsnet.MultipathMaxK {
		return fmt.Errorf("k=%d out of range 1..%d", k, dsnet.MultipathMaxK)
	}
	paths := dsnet.DisjointShortestPaths(g, s, t, k)
	ps := &dsnet.MultipathPathSet{Src: int32(s), Dst: int32(t), Paths: paths}
	ps.Canonicalize()
	if err := ps.Validate(g); err != nil {
		return err
	}
	cut := dsnet.MinCut(g, s, t)
	fmt.Printf("%v multipath path set %d -> %d: %d/%d paths (min cut %d), fingerprint %s\n",
		d, s, t, len(ps.Paths), k, cut, ps.Fingerprint())
	for i, p := range ps.Paths {
		fmt.Printf("  path %d (%d hops):", i, p.Hops())
		for _, v := range p {
			fmt.Printf(" %d", v)
		}
		fmt.Println()
	}
	return nil
}
