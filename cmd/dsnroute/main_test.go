package main

import "testing"

func TestRunTraces(t *testing.T) {
	for _, algo := range []string{"custom", "noovershoot"} {
		if err := run(64, "basic", 3, 52, algo, false, 1); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
	if err := run(60, "e", 7, 44, "local", false, 1); err != nil {
		t.Fatal(err)
	}
	if err := run(60, "v", 7, 44, "custom", false, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunReport(t *testing.T) {
	if err := run(128, "basic", 0, 0, "custom", true, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejections(t *testing.T) {
	if err := run(64, "bogus", 0, 1, "custom", false, 1); err == nil {
		t.Fatal("bad variant accepted")
	}
	if err := run(64, "basic", 0, 1, "bogus", false, 1); err == nil {
		t.Fatal("bad algorithm accepted")
	}
	if err := run(64, "basic", 0, 1, "local", false, 1); err == nil {
		t.Fatal("local routing on basic variant accepted")
	}
	if err := run(64, "basic", 0, 0, "custom", true, 0); err == nil {
		t.Fatal("bad stride accepted")
	}
	if err := run(65, "e", 0, 1, "custom", false, 1); err == nil {
		t.Fatal("DSN-E with n not multiple of p accepted")
	}
}

func TestRunShortAware(t *testing.T) {
	if err := run(128, "d", 3, 90, "short", false, 1); err != nil {
		t.Fatal(err)
	}
	if err := run(64, "basic", 3, 52, "short", false, 1); err == nil {
		t.Fatal("short-aware on basic variant accepted")
	}
}
