package main

import "testing"

// quick returns short-schedule options for tests.
func quick(topo, pattern, routing string, n int, rates, switching string, buf int) opts {
	return opts{
		topo: topo, pattern: pattern, routing: routing, n: n, seed: 1,
		rates: rates, warmup: 500, measure: 1000, drain: 1500,
		switching: switching, buf: buf,
		faultCycle: -1, faultSpread: -1,
	}
}

func TestRunVCT(t *testing.T) {
	if err := run(quick("dsn", "uniform", "adaptive", 64, "0.02", "vct", 0)); err != nil {
		t.Fatal(err)
	}
}

func TestRunNewPatterns(t *testing.T) {
	for _, pattern := range []string{"transpose", "shuffle", "hotspot", "stencil-2d", "all-to-all", "tornado"} {
		if err := run(quick("dsn", pattern, "adaptive", 64, "0.02", "vct", 0)); err != nil {
			t.Fatalf("%s: %v", pattern, err)
		}
	}
}

func TestRunCollective(t *testing.T) {
	o := quick("dsn", "uniform", "adaptive", 16, "0.02", "vct", 0)
	o.collective, o.collalgo, o.chunk, o.reps = "allgather", "ring", 8, 2
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	// Wormhole replay, default algorithm.
	o = quick("torus", "uniform", "adaptive", 16, "0.02", "wormhole", 20)
	o.collective, o.chunk, o.reps = "broadcast", 8, 1
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunCollectiveWithFaults(t *testing.T) {
	o := quick("dsn", "uniform", "adaptive", 16, "0.02", "vct", 0)
	o.collective, o.collalgo, o.chunk, o.reps = "allgather", "ring", 8, 1
	o.faults = 0.05
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunCollectiveRejections(t *testing.T) {
	o := quick("dsn", "uniform", "adaptive", 16, "0.02", "vct", 0)
	o.collective, o.reps = "bogus", 1
	if err := run(o); err == nil {
		t.Fatal("bad collective accepted")
	}
	o.collective, o.collalgo = "allreduce", "bogus"
	if err := run(o); err == nil {
		t.Fatal("bad algorithm accepted")
	}
	o.collective, o.collalgo = "allreduce", "halving-doubling"
	// 16 switches x 4 hosts = 64 hosts is a power of two; 60 switches is not.
	o.reps = 0
	if err := run(o); err == nil {
		t.Fatal("zero reps accepted")
	}
}

func TestRunWormhole(t *testing.T) {
	if err := run(quick("torus", "uniform", "adaptive", 64, "0.02", "wormhole", 20)); err != nil {
		t.Fatal(err)
	}
}

func TestRunCustomRouting(t *testing.T) {
	if err := run(quick("dsn-v", "uniform", "custom", 60, "0.01", "vct", 0)); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithFaults(t *testing.T) {
	o := quick("dsn", "uniform", "adaptive", 64, "0.06", "vct", 0)
	o.warmup, o.measure, o.drain = 1000, 3000, 4000
	o.faults = 0.05
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	// Wormhole accepts a plan too (masking-only semantics).
	o.switching, o.buf = "wormhole", 20
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejections(t *testing.T) {
	if err := run(quick("bogus", "uniform", "adaptive", 64, "0.02", "vct", 0)); err == nil {
		t.Fatal("bad topology accepted")
	}
	if err := run(quick("dsn", "bogus", "adaptive", 64, "0.02", "vct", 0)); err == nil {
		t.Fatal("bad pattern accepted")
	}
	if err := run(quick("dsn", "uniform", "bogus", 64, "0.02", "vct", 0)); err == nil {
		t.Fatal("bad routing accepted")
	}
	if err := run(quick("dsn", "uniform", "custom", 64, "0.02", "vct", 0)); err == nil {
		t.Fatal("custom routing without dsn-v accepted")
	}
	if err := run(quick("dsn", "uniform", "adaptive", 64, "zzz", "vct", 0)); err == nil {
		t.Fatal("bad rates accepted")
	}
	if err := run(quick("dsn", "uniform", "adaptive", 64, "0.02", "bogus", 0)); err == nil {
		t.Fatal("bad switching accepted")
	}
	o := quick("dsn", "uniform", "adaptive", 64, "0.02", "vct", 0)
	o.faults = -0.1
	if err := run(o); err == nil {
		t.Fatal("negative fault fraction accepted")
	}
	o.faults = 1e-9 // fails zero links
	if err := run(o); err == nil {
		t.Fatal("no-op fault fraction accepted silently")
	}
}
