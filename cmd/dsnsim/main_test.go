package main

import "testing"

func TestRunVCT(t *testing.T) {
	if err := run("dsn", "uniform", "adaptive", 64, 1, "0.02", 500, 1000, 1500, "vct", 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunWormhole(t *testing.T) {
	if err := run("torus", "uniform", "adaptive", 64, 1, "0.02", 500, 1000, 1500, "wormhole", 20, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunCustomRouting(t *testing.T) {
	if err := run("dsn-v", "uniform", "custom", 60, 1, "0.01", 500, 1000, 1500, "vct", 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejections(t *testing.T) {
	if err := run("bogus", "uniform", "adaptive", 64, 1, "0.02", 500, 1000, 1500, "vct", 0, 0); err == nil {
		t.Fatal("bad topology accepted")
	}
	if err := run("dsn", "bogus", "adaptive", 64, 1, "0.02", 500, 1000, 1500, "vct", 0, 0); err == nil {
		t.Fatal("bad pattern accepted")
	}
	if err := run("dsn", "uniform", "bogus", 64, 1, "0.02", 500, 1000, 1500, "vct", 0, 0); err == nil {
		t.Fatal("bad routing accepted")
	}
	if err := run("dsn", "uniform", "custom", 64, 1, "0.02", 500, 1000, 1500, "vct", 0, 0); err == nil {
		t.Fatal("custom routing without dsn-v accepted")
	}
	if err := run("dsn", "uniform", "adaptive", 64, 1, "zzz", 500, 1000, 1500, "vct", 0, 0); err == nil {
		t.Fatal("bad rates accepted")
	}
	if err := run("dsn", "uniform", "adaptive", 64, 1, "0.02", 500, 1000, 1500, "bogus", 0, 0); err == nil {
		t.Fatal("bad switching accepted")
	}
}
