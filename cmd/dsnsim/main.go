// Command dsnsim runs the cycle-accurate network simulator on one
// topology and traffic pattern across a range of offered loads, printing
// a latency-vs-accepted-traffic series (one Figure 10 curve).
//
// Usage:
//
//	dsnsim -topo dsn -pattern uniform
//	dsnsim -topo torus -pattern bit-reversal -rates 0.02,0.05,0.1
//	dsnsim -topo dsn-v -routing custom -rates 0.01,0.02
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dsnet"
)

func main() {
	var (
		topo      = flag.String("topo", "dsn", "topology: dsn, dsn-v, torus, random")
		pattern   = flag.String("pattern", "uniform", "traffic: uniform, bit-reversal, neighboring")
		routing   = flag.String("routing", "adaptive", "routing: adaptive (Duato + up*/down* escape), updown, valiant, custom (DSN source-routed; needs -topo dsn-v)")
		n         = flag.Int("n", 64, "number of switches")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		rateStr   = flag.String("rates", "0.02,0.04,0.06,0.08,0.10,0.12", "offered loads in flits/cycle/host")
		warmup    = flag.Int64("warmup", 20000, "warmup cycles")
		measure   = flag.Int64("measure", 40000, "measurement cycles")
		drain     = flag.Int64("drain", 40000, "drain cycles")
		switching = flag.String("switching", "vct", "switching mode: vct (virtual cut-through) or wormhole")
		buf       = flag.Int("buf", 0, "buffer flits per VC (default: packet size for vct, 20 for wormhole)")
		trace     = flag.Int64("trace", 0, "print lifecycle events for the first N packets (vct only)")
	)
	flag.Parse()
	if err := run(*topo, *pattern, *routing, *n, *seed, *rateStr, *warmup, *measure, *drain, *switching, *buf, *trace); err != nil {
		fmt.Fprintln(os.Stderr, "dsnsim:", err)
		os.Exit(1)
	}
}

func run(topo, pattern, routingName string, n int, seed uint64, rateStr string, warmup, measure, drain int64, switching string, buf int, trace int64) error {
	cfg := dsnet.DefaultSimConfig()
	cfg.Seed = seed
	cfg.WarmupCycles = warmup
	cfg.MeasureCycles = measure
	cfg.DrainCycles = drain
	if trace > 0 {
		cfg.Trace = os.Stderr
		cfg.TracePackets = trace
	}
	switch switching {
	case "vct":
		if buf > 0 {
			cfg.BufFlitsPerVC = buf
		}
	case "wormhole":
		cfg.BufFlitsPerVC = 20
		if buf > 0 {
			cfg.BufFlitsPerVC = buf
		}
	default:
		return fmt.Errorf("unknown switching mode %q", switching)
	}

	var rates []float64
	for _, s := range strings.Split(rateStr, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return fmt.Errorf("bad rate %q: %w", s, err)
		}
		rates = append(rates, r)
	}

	var g *dsnet.Graph
	var dsnV *dsnet.DSN
	switch topo {
	case "dsn":
		d, err := dsnet.NewDSN(n, dsnet.CeilLog2(n)-1)
		if err != nil {
			return err
		}
		g = d.Graph()
	case "dsn-v":
		d, err := dsnet.NewDSNV(n)
		if err != nil {
			return err
		}
		dsnV = d
		g = d.Graph()
	case "torus":
		t, err := dsnet.NewTorus2DFor(n)
		if err != nil {
			return err
		}
		g = t.Graph()
	case "random":
		gr, err := dsnet.NewDLNRandom(n, 2, 2, seed)
		if err != nil {
			return err
		}
		g = gr
	default:
		return fmt.Errorf("unknown topology %q", topo)
	}

	var rt dsnet.Router
	var err error
	switch routingName {
	case "adaptive":
		rt, err = dsnet.NewDuatoUpDown(g, cfg.VCs)
	case "updown":
		rt, err = dsnet.NewUpDownOnly(g, cfg.VCs)
	case "valiant":
		rt, err = dsnet.NewValiant(g, cfg.VCs)
	case "custom":
		if dsnV == nil {
			return fmt.Errorf("-routing custom requires -topo dsn-v")
		}
		rt, err = dsnet.NewDSNSourceRouted(dsnV)
	default:
		err = fmt.Errorf("unknown routing %q", routingName)
	}
	if err != nil {
		return err
	}

	pat, err := dsnet.PatternFor(pattern, g.N(), cfg.HostsPerSwitch)
	if err != nil {
		return err
	}

	fmt.Printf("# %s / %s / %s routing / %s switching, %d switches x %d hosts, seed %d\n",
		topo, pattern, routingName, switching, g.N(), cfg.HostsPerSwitch, seed)
	fmt.Printf("%12s %12s %12s %12s %10s\n", "offered_gbps", "accepted", "latency_ns", "p99_ns", "saturated")
	for _, rate := range rates {
		var res dsnet.SimResult
		var runErr error
		if switching == "wormhole" {
			sim, err := dsnet.NewWormSim(cfg, g, rt, pat, rate)
			if err != nil {
				return err
			}
			res, runErr = sim.Run()
		} else {
			sim, err := dsnet.NewSim(cfg, g, rt, pat, rate)
			if err != nil {
				return err
			}
			res, runErr = sim.Run()
		}
		sat := res.Saturated
		if runErr != nil {
			sat = true
		}
		fmt.Printf("%12.2f %12.2f %12.1f %12.1f %10v\n",
			res.OfferedGbps, res.AcceptedGbps, res.AvgLatencyNS, res.P99LatencyNS, sat)
	}
	return nil
}
