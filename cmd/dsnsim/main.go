// Command dsnsim runs the cycle-accurate network simulator on one
// topology and traffic pattern across a range of offered loads, printing
// a latency-vs-accepted-traffic series (one Figure 10 curve).
//
// Usage:
//
//	dsnsim -topo dsn -pattern uniform
//	dsnsim -topo torus -pattern bit-reversal -rates 0.02,0.05,0.1
//	dsnsim -topo dsn-v -routing custom -rates 0.01,0.02
//	dsnsim -topo dsn -faults 0.05
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dsnet"
)

// opts carries the command-line configuration of one dsnsim invocation.
type opts struct {
	topo      string
	pattern   string
	routing   string
	n         int
	seed      uint64
	rates     string
	warmup    int64
	measure   int64
	drain     int64
	switching string
	buf       int
	trace     int64

	// Live fault injection: faults is the fraction of links to kill
	// during the run (0 disables). faultCycle / faultSpread place the
	// failures in time; negative values mean "at warmup end" and "across
	// half the measurement window".
	faults      float64
	faultCycle  int64
	faultSpread int64
}

func main() {
	var o opts
	flag.StringVar(&o.topo, "topo", "dsn", "topology: dsn, dsn-v, torus, random")
	flag.StringVar(&o.pattern, "pattern", "uniform", "traffic: uniform, bit-reversal, neighboring")
	flag.StringVar(&o.routing, "routing", "adaptive", "routing: adaptive (Duato + up*/down* escape), updown, valiant, custom (DSN source-routed; needs -topo dsn-v)")
	flag.IntVar(&o.n, "n", 64, "number of switches")
	flag.Uint64Var(&o.seed, "seed", 1, "simulation seed")
	flag.StringVar(&o.rates, "rates", "0.02,0.04,0.06,0.08,0.10,0.12", "offered loads in flits/cycle/host")
	flag.Int64Var(&o.warmup, "warmup", 20000, "warmup cycles")
	flag.Int64Var(&o.measure, "measure", 40000, "measurement cycles")
	flag.Int64Var(&o.drain, "drain", 40000, "drain cycles")
	flag.StringVar(&o.switching, "switching", "vct", "switching mode: vct (virtual cut-through) or wormhole")
	flag.IntVar(&o.buf, "buf", 0, "buffer flits per VC (default: packet size for vct, 20 for wormhole)")
	flag.Int64Var(&o.trace, "trace", 0, "print lifecycle events for the first N packets (vct only)")
	flag.Float64Var(&o.faults, "faults", 0, "fraction of links to fail during the run (live fault injection)")
	flag.Int64Var(&o.faultCycle, "faultcycle", -1, "cycle of the first link failure (default: end of warmup)")
	flag.Int64Var(&o.faultSpread, "faultspread", -1, "cycles over which failures are staggered (default: half the measurement window)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "dsnsim:", err)
		os.Exit(1)
	}
}

func run(o opts) error {
	cfg := dsnet.DefaultSimConfig()
	cfg.Seed = o.seed
	cfg.WarmupCycles = o.warmup
	cfg.MeasureCycles = o.measure
	cfg.DrainCycles = o.drain
	if o.trace > 0 {
		cfg.Trace = os.Stderr
		cfg.TracePackets = o.trace
	}
	switch o.switching {
	case "vct":
		if o.buf > 0 {
			cfg.BufFlitsPerVC = o.buf
		}
	case "wormhole":
		cfg.BufFlitsPerVC = 20
		if o.buf > 0 {
			cfg.BufFlitsPerVC = o.buf
		}
	default:
		return fmt.Errorf("unknown switching mode %q", o.switching)
	}

	var rates []float64
	for _, s := range strings.Split(o.rates, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return fmt.Errorf("bad rate %q: %w", s, err)
		}
		rates = append(rates, r)
	}

	var g *dsnet.Graph
	var dsnV *dsnet.DSN
	switch o.topo {
	case "dsn":
		d, err := dsnet.NewDSN(o.n, dsnet.CeilLog2(o.n)-1)
		if err != nil {
			return err
		}
		g = d.Graph()
	case "dsn-v":
		d, err := dsnet.NewDSNV(o.n)
		if err != nil {
			return err
		}
		dsnV = d
		g = d.Graph()
	case "torus":
		t, err := dsnet.NewTorus2DFor(o.n)
		if err != nil {
			return err
		}
		g = t.Graph()
	case "random":
		gr, err := dsnet.NewDLNRandom(o.n, 2, 2, o.seed)
		if err != nil {
			return err
		}
		g = gr
	default:
		return fmt.Errorf("unknown topology %q", o.topo)
	}

	var rt dsnet.Router
	var err error
	switch o.routing {
	case "adaptive":
		rt, err = dsnet.NewDuatoUpDown(g, cfg.VCs)
	case "updown":
		rt, err = dsnet.NewUpDownOnly(g, cfg.VCs)
	case "valiant":
		rt, err = dsnet.NewValiant(g, cfg.VCs)
	case "custom":
		if dsnV == nil {
			return fmt.Errorf("-routing custom requires -topo dsn-v")
		}
		rt, err = dsnet.NewDSNSourceRouted(dsnV)
	default:
		err = fmt.Errorf("unknown routing %q", o.routing)
	}
	if err != nil {
		return err
	}

	var plan *dsnet.FaultPlan
	if o.faults > 0 {
		start, spread := o.faultCycle, o.faultSpread
		if start < 0 {
			start = cfg.WarmupCycles
		}
		if spread < 0 {
			spread = cfg.MeasureCycles / 2
		}
		plan, err = dsnet.RandomLinkFaults(g, o.faults, start, spread, o.seed)
		if err != nil {
			return err
		}
		if plan.FailureCount() == 0 {
			return fmt.Errorf("-faults %g fails no links on %d edges; raise the fraction", o.faults, g.M())
		}
	} else if o.faults < 0 {
		return fmt.Errorf("-faults %g is negative", o.faults)
	}

	pat, err := dsnet.PatternFor(o.pattern, g.N(), cfg.HostsPerSwitch)
	if err != nil {
		return err
	}

	fmt.Printf("# %s / %s / %s routing / %s switching, %d switches x %d hosts, seed %d\n",
		o.topo, o.pattern, o.routing, o.switching, g.N(), cfg.HostsPerSwitch, o.seed)
	if plan != nil {
		fmt.Printf("# live faults: %d links failing from cycle %d\n",
			plan.FailureCount(), plan.Events[0].Cycle)
		fmt.Printf("%12s %12s %12s %12s %10s %9s %8s %6s %8s %9s %12s\n",
			"offered_gbps", "accepted", "latency_ns", "p99_ns", "saturated",
			"del_rate", "dropped", "lost", "retried", "rerouted", "pf_p99_ns")
	} else {
		fmt.Printf("%12s %12s %12s %12s %10s\n", "offered_gbps", "accepted", "latency_ns", "p99_ns", "saturated")
	}
	for _, rate := range rates {
		var res dsnet.SimResult
		var runErr error
		if o.switching == "wormhole" {
			sim, err := dsnet.NewWormSim(cfg, g, rt, pat, rate)
			if err != nil {
				return err
			}
			if plan != nil {
				if err := sim.SetFaultPlan(plan); err != nil {
					return err
				}
			}
			res, runErr = sim.Run()
		} else {
			sim, err := dsnet.NewSim(cfg, g, rt, pat, rate)
			if err != nil {
				return err
			}
			if plan != nil {
				if err := sim.SetFaultPlan(plan); err != nil {
					return err
				}
			}
			res, runErr = sim.Run()
		}
		sat := res.Saturated
		if runErr != nil {
			sat = true
		}
		if plan != nil {
			delRate := 0.0
			if res.GeneratedMeasured > 0 {
				delRate = float64(res.DeliveredMeasured) / float64(res.GeneratedMeasured)
			}
			fmt.Printf("%12.2f %12.2f %12.1f %12.1f %10v %9.3f %8d %6d %8d %9d %12.1f\n",
				res.OfferedGbps, res.AcceptedGbps, res.AvgLatencyNS, res.P99LatencyNS, sat,
				delRate, res.Dropped, res.Lost, res.Retried, res.Rerouted, res.PostFaultP99NS)
		} else {
			fmt.Printf("%12.2f %12.2f %12.1f %12.1f %10v\n",
				res.OfferedGbps, res.AcceptedGbps, res.AvgLatencyNS, res.P99LatencyNS, sat)
		}
	}
	return nil
}
