// Command dsnsim runs the cycle-accurate network simulator on one
// topology, either open-loop (one traffic pattern across a range of
// offered loads, printing a latency-vs-accepted-traffic series — one
// Figure 10 curve) or closed-loop (-collective: replay a collective
// workload's message DAG and print its makespan per repetition).
//
// Usage:
//
//	dsnsim -topo dsn -pattern uniform
//	dsnsim -topo torus -pattern transpose -rates 0.02,0.05,0.1
//	dsnsim -topo dsn -pattern stencil-2d -switching wormhole
//	dsnsim -topo dsn-v -routing custom -rates 0.01,0.02
//	dsnsim -topo dsn -faults 0.05
//	dsnsim -topo dsn -collective allreduce -collalgo ring
//	dsnsim -topo torus -collective broadcast -faults 0.05
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dsnet"
	"dsnet/internal/harness"
)

// opts carries the command-line configuration of one dsnsim invocation.
type opts struct {
	topo      string
	pattern   string
	routing   string
	n         int
	seed      uint64
	rates     string
	warmup    int64
	measure   int64
	drain     int64
	switching string
	buf       int
	trace     int64

	// Live fault injection: faults is the fraction of links to kill
	// during the run (0 disables). faultCycle / faultSpread place the
	// failures in time; negative values mean "at warmup end" and "across
	// half the measurement window" (in collective mode: "at cycle 0" and
	// "across the first 5000 cycles", so failures land mid-collective).
	faults      float64
	faultCycle  int64
	faultSpread int64

	// Runtime deadlock recovery: recover arms the per-packet stall
	// detector and Disha-style abort path, stall overrides the suspicion
	// threshold, drainFaults additionally drains in-flight traffic
	// before each fault-epoch routing-table swap. (-drain is already the
	// post-measurement drain window, hence -drainfaults.)
	recover     bool
	stall       int64
	drainFaults bool

	// Multipath source routing: multipath replaces -routing with the
	// k-shortest-path spraying router; k is the per-pair path budget and
	// selector picks how packets spread across the sprayed paths.
	multipath bool
	k         int
	selector  string

	// Closed-loop collective replay: collective selects the workload
	// (empty keeps the open-loop pattern mode), collalgo the algorithm
	// (empty picks the collective's default), chunk the per-host chunk
	// size in flits, reps the number of seeded rank placements.
	collective string
	collalgo   string
	chunk      int
	reps       int
}

// runner executes the per-rate / per-rep cells on a bounded worker pool
// with an optional content-addressed cache; assembly is deterministic,
// so the printed series is bit-identical at any -j.
var runner *harness.Runner

func main() {
	var o opts
	flag.StringVar(&o.topo, "topo", "dsn", "topology: dsn, dsn-v, torus, random")
	flag.StringVar(&o.pattern, "pattern", "uniform",
		"traffic: "+strings.Join(dsnet.PatternNames, ", "))
	flag.StringVar(&o.routing, "routing", "adaptive", "routing: adaptive (Duato + up*/down* escape), updown, valiant, custom (DSN source-routed; needs -topo dsn-v)")
	flag.IntVar(&o.n, "n", 64, "number of switches")
	flag.Uint64Var(&o.seed, "seed", 1, "simulation seed")
	flag.StringVar(&o.rates, "rates", "0.02,0.04,0.06,0.08,0.10,0.12", "offered loads in flits/cycle/host")
	flag.Int64Var(&o.warmup, "warmup", 20000, "warmup cycles")
	flag.Int64Var(&o.measure, "measure", 40000, "measurement cycles")
	flag.Int64Var(&o.drain, "drain", 40000, "drain cycles")
	flag.StringVar(&o.switching, "switching", "vct", "switching mode: vct (virtual cut-through) or wormhole")
	flag.IntVar(&o.buf, "buf", 0, "buffer flits per VC (default: packet size for vct, 20 for wormhole)")
	flag.Int64Var(&o.trace, "trace", 0, "print lifecycle events for the first N packets (vct only)")
	flag.Float64Var(&o.faults, "faults", 0, "fraction of links to fail during the run (live fault injection)")
	flag.Int64Var(&o.faultCycle, "faultcycle", -1, "cycle of the first link failure (default: end of warmup)")
	flag.Int64Var(&o.faultSpread, "faultspread", -1, "cycles over which failures are staggered (default: half the measurement window)")
	flag.BoolVar(&o.recover, "recover", false, "arm runtime deadlock detection and recovery")
	flag.Int64Var(&o.stall, "stallthreshold", 0, "stall cycles before a packet is suspected deadlocked (0: recovery default)")
	flag.BoolVar(&o.drainFaults, "drainfaults", false, "with -recover: drain in-flight traffic before swapping routing tables at each fault epoch")
	flag.BoolVar(&o.multipath, "multipath", false, "route with k-shortest-path spraying instead of -routing")
	flag.IntVar(&o.k, "k", 4, "with -multipath: edge-disjoint paths per pair (1..15)")
	flag.StringVar(&o.selector, "selector", "adaptive", "with -multipath: path selector: "+strings.Join(dsnet.SelectorNames, ", "))
	flag.StringVar(&o.collective, "collective", "",
		"closed-loop collective workload: "+strings.Join(dsnet.CollectiveNames, ", ")+" (empty: open-loop -pattern mode)")
	flag.StringVar(&o.collalgo, "collalgo", "", "collective algorithm: ring, halving-doubling, binomial, pairwise (default: the collective's default)")
	flag.IntVar(&o.chunk, "chunk", 0, "collective chunk size in flits per host (default: one packet)")
	flag.IntVar(&o.reps, "reps", 3, "collective repetitions across seeded rank placements")
	jobs := flag.Int("j", 0, "parallel sweep workers (0: all CPUs)")
	cache := flag.String("cache", harness.DefaultCacheDir, "sweep result cache directory")
	nocache := flag.Bool("nocache", false, "bypass the sweep result cache")
	bench := flag.String("bench", "", "write machine-readable sweep benchmarks to this JSON file")
	flag.Parse()
	var err error
	runner, err = harness.NewRunner(*jobs, *cache, *nocache)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsnsim:", err)
		os.Exit(1)
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "dsnsim:", err)
		os.Exit(1)
	}
	if *bench != "" {
		if err := harness.NewReport(runner.Bench, runner.JobCount()).WriteFile(*bench); err != nil {
			fmt.Fprintln(os.Stderr, "dsnsim:", err)
			os.Exit(1)
		}
	}
}

func run(o opts) error {
	cfg := dsnet.DefaultSimConfig()
	cfg.Seed = o.seed
	cfg.WarmupCycles = o.warmup
	cfg.MeasureCycles = o.measure
	cfg.DrainCycles = o.drain
	if o.trace > 0 {
		cfg.Trace = os.Stderr
		cfg.TracePackets = o.trace
		// Tracing wants readable, always-executed output: parallel cells
		// would interleave stderr and a cache hit would skip the traced
		// run entirely.
		runner = harness.Serial()
	}
	switch o.switching {
	case "vct":
		if o.buf > 0 {
			cfg.BufFlitsPerVC = o.buf
		}
	case "wormhole":
		cfg.BufFlitsPerVC = 20
		if o.buf > 0 {
			cfg.BufFlitsPerVC = o.buf
		}
	default:
		return fmt.Errorf("unknown switching mode %q", o.switching)
	}

	var rates []float64
	for _, s := range strings.Split(o.rates, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return fmt.Errorf("bad rate %q: %w", s, err)
		}
		rates = append(rates, r)
	}

	var g *dsnet.Graph
	var dsnV *dsnet.DSN
	switch o.topo {
	case "dsn":
		d, err := dsnet.NewDSN(o.n, dsnet.CeilLog2(o.n)-1)
		if err != nil {
			return err
		}
		g = d.Graph()
	case "dsn-v":
		d, err := dsnet.NewDSNV(o.n)
		if err != nil {
			return err
		}
		dsnV = d
		g = d.Graph()
	case "torus":
		t, err := dsnet.NewTorus2DFor(o.n)
		if err != nil {
			return err
		}
		g = t.Graph()
	case "random":
		gr, err := dsnet.NewDLNRandom(o.n, 2, 2, o.seed)
		if err != nil {
			return err
		}
		g = gr
	default:
		return fmt.Errorf("unknown topology %q", o.topo)
	}

	// Multipath replaces the -routing scheme wholesale: the routing label
	// (and so every cell key and printed header) carries the selector and
	// path budget instead.
	var mpSel dsnet.MultipathSelector
	if o.multipath {
		var err error
		mpSel, err = dsnet.ParseSelector(o.selector)
		if err != nil {
			return err
		}
		o.routing = fmt.Sprintf("mp-%s-k%d", mpSel, o.k)
	}

	// mkRouter builds a fresh router per cell: construction is
	// deterministic, and fault-aware routers mutate their tables as
	// faults land, so sharing one instance across offered loads would
	// leak degraded state between points.
	mkRouter := func() (dsnet.Router, error) {
		if o.multipath {
			return dsnet.NewMultipath(g, dsnet.MultipathConfig{
				K: o.k, VCs: cfg.VCs, Selector: mpSel, Seed: o.seed,
			})
		}
		switch o.routing {
		case "adaptive":
			return dsnet.NewDuatoUpDown(g, cfg.VCs)
		case "updown":
			return dsnet.NewUpDownOnly(g, cfg.VCs)
		case "valiant":
			return dsnet.NewValiant(g, cfg.VCs)
		case "custom":
			if dsnV == nil {
				return nil, fmt.Errorf("-routing custom requires -topo dsn-v")
			}
			return dsnet.NewDSNSourceRouted(dsnV)
		}
		return nil, fmt.Errorf("unknown routing %q", o.routing)
	}
	if !o.multipath {
		switch o.routing {
		case "adaptive", "updown", "valiant":
		case "custom":
			if dsnV == nil {
				return fmt.Errorf("-routing custom requires -topo dsn-v")
			}
		default:
			return fmt.Errorf("unknown routing %q", o.routing)
		}
	}

	if !o.recover && (o.drainFaults || o.stall > 0) {
		return fmt.Errorf("-drainfaults and -stallthreshold require -recover")
	}
	// The recovery tuning joins every cell key: a cached unarmed run
	// must never answer for an armed one (or vice versa), even though
	// idle recovery is bit-identical on the wire.
	recFP := "off"
	var rec dsnet.RecoveryConfig
	if o.recover {
		rec = dsnet.RecoveryDefault()
		if o.stall > 0 {
			rec.StallThresholdCycles = o.stall
		}
		rec.DrainOnFault = o.drainFaults
		recFP = harness.Fingerprint(fmt.Sprintf("%+v", rec))
	}

	var err error
	var plan *dsnet.FaultPlan
	if o.faults > 0 {
		start, spread := o.faultCycle, o.faultSpread
		if start < 0 {
			start = cfg.WarmupCycles
			if o.collective != "" {
				start = 0 // a replay has no warmup: fail mid-collective
			}
		}
		if spread < 0 {
			spread = cfg.MeasureCycles / 2
			if o.collective != "" {
				spread = 5000
			}
		}
		plan, err = dsnet.RandomLinkFaults(g, o.faults, start, spread, o.seed)
		if err != nil {
			return err
		}
		if plan.FailureCount() == 0 {
			return fmt.Errorf("-faults %g fails no links on %d edges; raise the fraction", o.faults, g.M())
		}
	} else if o.faults < 0 {
		return fmt.Errorf("-faults %g is negative", o.faults)
	}

	if o.collective != "" {
		return runCollective(o, cfg, g, mkRouter, plan, rec, recFP)
	}

	fmt.Printf("# %s / %s / %s routing / %s switching, %d switches x %d hosts, seed %d\n",
		o.topo, o.pattern, o.routing, o.switching, g.N(), cfg.HostsPerSwitch, o.seed)
	recCols := ""
	if o.recover {
		fmt.Printf("# recovery armed: stall threshold %d, confirm %d, abort budget %d, drain-on-fault %v\n",
			rec.StallThresholdCycles, rec.ConfirmCycles, rec.AbortBudget, rec.DrainOnFault)
		recCols = fmt.Sprintf(" %7s %7s %7s %7s %8s", "dl_det", "dl_rec", "dl_rel", "dl_lost", "dl_flits")
	}
	if plan != nil {
		fmt.Printf("# live faults: %d links failing from cycle %d\n",
			plan.FailureCount(), plan.Events[0].Cycle)
		fmt.Printf("%12s %12s %12s %12s %10s %9s %8s %6s %8s %9s %12s%s\n",
			"offered_gbps", "accepted", "latency_ns", "p99_ns", "saturated",
			"del_rate", "dropped", "lost", "retried", "rerouted", "pf_p99_ns", recCols)
	} else {
		fmt.Printf("%12s %12s %12s %12s %10s%s\n", "offered_gbps", "accepted", "latency_ns", "p99_ns", "saturated", recCols)
	}
	// point memoizes one offered load: the run result plus whether the
	// progress watchdog aborted it (printed as saturated).
	type point struct {
		Res      dsnet.SimResult
		Watchdog bool
	}
	graphFP := harness.GraphFingerprint(g)
	cfgFP := harness.SimConfigFingerprint(cfg)
	planFP := harness.FaultPlanFingerprint(plan)
	cells := make([]harness.Cell[point], 0, len(rates))
	for _, rate := range rates {
		key := harness.NewKey("dsnsim")
		key.Topo, key.Routing, key.Switching, key.Pattern = o.topo, o.routing, o.switching, o.pattern
		key.N, key.Rate, key.Seed = g.N(), rate, o.seed
		key.Params = []harness.Param{
			harness.P("graph", graphFP), harness.P("cfg", cfgFP), harness.P("plan", planFP),
			harness.P("recover", recFP),
		}
		cells = append(cells, harness.Cell[point]{Key: key, Run: func() (point, error) {
			rt, err := mkRouter()
			if err != nil {
				return point{}, err
			}
			// Built per cell: some patterns (all-to-all) carry per-simulation
			// state that must not leak between offered loads.
			pat, err := dsnet.PatternFor(o.pattern, g.N(), cfg.HostsPerSwitch)
			if err != nil {
				return point{}, err
			}
			var res dsnet.SimResult
			var runErr error
			if o.switching == "wormhole" {
				sim, err := dsnet.NewWormSim(cfg, g, rt, pat, rate)
				if err != nil {
					return point{}, err
				}
				if plan != nil {
					if err := sim.SetFaultPlan(plan); err != nil {
						return point{}, err
					}
				}
				if o.recover {
					if err := sim.SetRecovery(rec); err != nil {
						return point{}, err
					}
				}
				res, runErr = sim.Run()
			} else {
				sim, err := dsnet.NewSim(cfg, g, rt, pat, rate)
				if err != nil {
					return point{}, err
				}
				if plan != nil {
					if err := sim.SetFaultPlan(plan); err != nil {
						return point{}, err
					}
				}
				if o.recover {
					if err := sim.SetRecovery(rec); err != nil {
						return point{}, err
					}
				}
				res, runErr = sim.Run()
			}
			return point{Res: res, Watchdog: runErr != nil}, nil
		}})
	}
	points, err := harness.Run(runner, "dsnsim", cells)
	if err != nil {
		return err
	}
	for _, p := range points {
		res := p.Res
		sat := res.Saturated || p.Watchdog
		recVals := ""
		if o.recover {
			recVals = fmt.Sprintf(" %7d %7d %7d %7d %8d",
				res.DeadlocksDetected, res.DeadlocksRecovered, res.DeadlocksReleased,
				res.DeadlocksLost, res.AbortedFlits)
		}
		if plan != nil {
			delRate := 0.0
			if res.GeneratedMeasured > 0 {
				delRate = float64(res.DeliveredMeasured) / float64(res.GeneratedMeasured)
			}
			fmt.Printf("%12.2f %12.2f %12.1f %12.1f %10v %9.3f %8d %6d %8d %9d %12.1f%s\n",
				res.OfferedGbps, res.AcceptedGbps, res.AvgLatencyNS, res.P99LatencyNS, sat,
				delRate, res.Dropped, res.Lost, res.Retried, res.Rerouted, res.PostFaultP99NS, recVals)
		} else {
			fmt.Printf("%12.2f %12.2f %12.1f %12.1f %10v%s\n",
				res.OfferedGbps, res.AcceptedGbps, res.AvgLatencyNS, res.P99LatencyNS, sat, recVals)
		}
	}
	return nil
}

// runCollective replays one collective workload's message DAG to
// completion o.reps times, each under a different seeded rank placement,
// and reports per-rep makespans plus a mean with a 95% CI.
func runCollective(o opts, cfg dsnet.SimConfig, g *dsnet.Graph, mkRouter func() (dsnet.Router, error), plan *dsnet.FaultPlan, rec dsnet.RecoveryConfig, recFP string) error {
	if o.reps < 1 {
		return fmt.Errorf("-reps %d must be >= 1", o.reps)
	}
	chunk := o.chunk
	if chunk < 1 {
		chunk = cfg.PacketFlits
	}
	hosts := g.N() * cfg.HostsPerSwitch
	dag, err := dsnet.GenerateCollective(o.collective, o.collalgo, hosts, chunk)
	if err != nil {
		return err
	}
	fmt.Printf("# %s / %s / %s routing / %s switching, %d switches x %d hosts, seed %d\n",
		o.topo, dag.Name(), o.routing, o.switching, g.N(), cfg.HostsPerSwitch, o.seed)
	fmt.Printf("# %d messages, %d flits total, chunk %d flits, phases: %s\n",
		len(dag.Messages), dag.TotalFlits(), chunk, strings.Join(dag.PhaseNames, ", "))
	if plan != nil {
		fmt.Printf("# live faults: %d links failing from cycle %d\n",
			plan.FailureCount(), plan.Events[0].Cycle)
	}
	if o.recover {
		fmt.Printf("# recovery armed: stall threshold %d, confirm %d, abort budget %d, drain-on-fault %v\n",
			rec.StallThresholdCycles, rec.ConfirmCycles, rec.AbortBudget, rec.DrainOnFault)
	}
	fmt.Printf("%4s %12s %10s %10s %10s", "rep", "makespan_us", "delivered", "completed", "cycles")
	for _, ph := range dag.PhaseNames {
		fmt.Printf(" %12s", ph+"_us")
	}
	if plan != nil {
		fmt.Printf(" %8s %6s %8s", "dropped", "lost", "retried")
	}
	if o.recover {
		fmt.Printf(" %7s %7s %7s %7s", "dl_det", "dl_rec", "dl_rel", "dl_lost")
	}
	fmt.Println()
	// repResult memoizes one placement repetition; Watchdog carries the
	// abort message of a run the progress watchdog killed.
	type repResult struct {
		Res      dsnet.SimResult
		Watchdog string
	}
	graphFP := harness.GraphFingerprint(g)
	cfgFP := harness.SimConfigFingerprint(cfg)
	planFP := harness.FaultPlanFingerprint(plan)
	cells := make([]harness.Cell[repResult], 0, o.reps)
	for rep := 0; rep < o.reps; rep++ {
		key := harness.NewKey("dsnsim-collective")
		key.Topo, key.Routing, key.Switching, key.Pattern = o.topo, o.routing, o.switching, dag.Name()
		key.N, key.Seed = g.N(), o.seed
		key.Params = []harness.Param{
			harness.Pd("chunk", int64(chunk)), harness.Pd("rep", int64(rep)),
			harness.P("graph", graphFP), harness.P("cfg", cfgFP), harness.P("plan", planFP),
			harness.P("recover", recFP),
		}
		cells = append(cells, harness.Cell[repResult]{Key: key, Run: func() (repResult, error) {
			rt, err := mkRouter()
			if err != nil {
				return repResult{}, err
			}
			// The same seed mixing as analysis.CollectiveSweep, so dsnsim reps
			// reproduce the placements behind dsnfigs -fig collective rows.
			replay := dsnet.CollectiveReplay(dag.Permuted(o.seed + uint64(rep)*0x9e37))
			var res dsnet.SimResult
			var runErr error
			if o.switching == "wormhole" {
				sim, err := dsnet.NewWormSimReplay(cfg, g, rt, replay)
				if err != nil {
					return repResult{}, err
				}
				if plan != nil {
					if err := sim.SetFaultPlan(plan); err != nil {
						return repResult{}, err
					}
				}
				if o.recover {
					if err := sim.SetRecovery(rec); err != nil {
						return repResult{}, err
					}
				}
				res, runErr = sim.Run()
			} else {
				sim, err := dsnet.NewSimReplay(cfg, g, rt, replay)
				if err != nil {
					return repResult{}, err
				}
				if plan != nil {
					if err := sim.SetFaultPlan(plan); err != nil {
						return repResult{}, err
					}
				}
				if o.recover {
					if err := sim.SetRecovery(rec); err != nil {
						return repResult{}, err
					}
				}
				res, runErr = sim.Run()
			}
			if runErr != nil {
				return repResult{Res: res, Watchdog: runErr.Error()}, nil
			}
			return repResult{Res: res}, nil
		}})
	}
	repResults, err := harness.Run(runner, "dsnsim-collective", cells)
	if err != nil {
		return err
	}
	var makespans []float64
	for rep, rr := range repResults {
		if rr.Watchdog != "" {
			fmt.Printf("%4d  watchdog: %s\n", rep, rr.Watchdog)
			continue
		}
		res := rr.Res
		fmt.Printf("%4d %12.1f %6d/%-3d %10v %10d", rep,
			res.MakespanNS/1e3, res.ReplayDelivered, res.ReplayMessages,
			res.ReplayCompleted, res.MakespanCycles)
		for _, p := range res.PhaseEndNS {
			fmt.Printf(" %12.1f", p/1e3)
		}
		if plan != nil {
			fmt.Printf(" %8d %6d %8d", res.Dropped, res.Lost, res.Retried)
		}
		if o.recover {
			fmt.Printf(" %7d %7d %7d %7d",
				res.DeadlocksDetected, res.DeadlocksRecovered, res.DeadlocksReleased, res.DeadlocksLost)
		}
		fmt.Println()
		if res.ReplayCompleted {
			makespans = append(makespans, res.MakespanNS/1e3)
		}
	}
	if len(makespans) > 0 {
		mean, ci := dsnet.MeanAndCI(makespans)
		fmt.Printf("# makespan %.1f +/- %.1f us over %d/%d completed reps\n",
			mean, ci, len(makespans), o.reps)
	} else {
		fmt.Printf("# no rep delivered every message\n")
	}
	return nil
}
