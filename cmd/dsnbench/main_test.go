package main

import "testing"

func TestGridFor(t *testing.T) {
	smoke := gridFor(true, 7)
	std := gridFor(false, 7)
	if smoke.name != "smoke" || std.name != "standard" {
		t.Fatalf("grid names = %q, %q", smoke.name, std.name)
	}
	if smoke.cfg.Seed != 7 || std.cfg.Seed != 7 {
		t.Fatal("seed not threaded into the sim config")
	}
	// The smoke grid must actually be smaller — it is the CI gate.
	if smoke.cfg.MeasureCycles >= std.cfg.MeasureCycles {
		t.Fatal("smoke grid does not shorten the measurement window")
	}
	if len(smoke.latRates) >= len(std.latRates) || smoke.trials >= std.trials ||
		smoke.scenarios >= std.scenarios || len(smoke.targets) >= len(std.targets) {
		t.Fatal("smoke grid is not smaller than the standard grid")
	}
	for _, g := range []grid{smoke, std} {
		if len(g.latRates) == 0 || len(g.fracs) == 0 || len(g.collSizes) == 0 ||
			len(g.targets) == 0 || g.trials < 1 || g.collReps < 1 || g.scenarios < 1 {
			t.Fatalf("%s grid has an empty dimension: %+v", g.name, g)
		}
	}
}

func TestRunRejectsUnknownSwitching(t *testing.T) {
	if err := run(opts{switching: "buffered"}); err == nil {
		t.Fatal("run accepted an unknown switching mode")
	}
}
