package main

import (
	"fmt"
	"time"

	"dsnet"
)

// scaling measures serial-vs-parallel wall time of the harness-backed
// fault sweep at growing network sizes and returns the curve for
// embedding in the benchmark report. The fault sweep is pure graph
// analytics (no cycle simulation), so it is the one sweep that stays
// tractable at 1024 switches; it is what the EXPERIMENTS.md scaling
// baseline tabulates.
func scaling(jobs int, seed uint64) ([]dsnet.BenchScalingRow, error) {
	var rows []dsnet.BenchScalingRow
	fmt.Printf("%-8s %-6s %12s %12s %8s\n", "switches", "cells", "serial_ms", "parallel_ms", "speedup")
	for _, n := range []int{64, 256, 1024} {
		fracs := []float64{0.02, 0.05, 0.10}
		trials := 10

		serial := time.Now()
		ref, err := dsnet.FaultSweepWith(&dsnet.SweepRunner{Jobs: 1}, n, fracs, trials, seed)
		if err != nil {
			return nil, err
		}
		serialMS := float64(time.Since(serial).Microseconds()) / 1e3

		par := time.Now()
		got, err := dsnet.FaultSweepWith(&dsnet.SweepRunner{Jobs: jobs}, n, fracs, trials, seed)
		if err != nil {
			return nil, err
		}
		parMS := float64(time.Since(par).Microseconds()) / 1e3

		if len(ref) != len(got) {
			return nil, fmt.Errorf("n=%d: parallel row count differs", n)
		}
		cells := len(fracs)*len(dsnet.ComparisonNames)*trials + len(dsnet.ComparisonNames)
		row := dsnet.BenchScalingRow{
			Switches: n, Cells: cells,
			SerialMS: serialMS, ParallelMS: parMS, Speedup: serialMS / parMS,
		}
		rows = append(rows, row)
		fmt.Printf("%-8d %-6d %12.0f %12.0f %7.2fx\n", row.Switches, row.Cells, row.SerialMS, row.ParallelMS, row.Speedup)
	}
	return rows, nil
}
