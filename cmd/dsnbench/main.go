// Command dsnbench benchmarks the sweep-orchestration harness and
// verifies its two core guarantees on a real grid:
//
//   - determinism: the parallel run's results are byte-identical to the
//     serial baseline's,
//   - cache fidelity: a fully cached re-run executes zero cells and
//     reproduces the fresh results byte-for-byte.
//
// It runs a standard grid (latency, fault, collective and chaos sweeps)
// three times — serial uncached, parallel populating a cache, parallel
// fully cached — and writes a machine-readable BENCH_sweeps.json with
// wall times, cells executed/cached, throughput, speedup and the replay
// verdict. The exit status is 0 only when both guarantees hold, so a
// bounded invocation doubles as a CI gate.
//
// Usage:
//
//	dsnbench                      # standard grid, all CPUs
//	dsnbench -smoke               # small grid (CI)
//	dsnbench -smoke -switching wormhole
//	dsnbench -j 8 -o BENCH_sweeps.json
//	dsnbench -scaling -j 8       # grid + serial-vs-parallel scaling curve
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dsnet"
)

type opts struct {
	smoke     bool
	scaling   bool
	switching string
	jobs      int
	seed      uint64
	cacheDir  string
	out       string
}

func main() {
	var o opts
	flag.BoolVar(&o.smoke, "smoke", false, "small grid with short simulation windows (CI)")
	flag.BoolVar(&o.scaling, "scaling", false, "also measure the serial-vs-parallel fault-sweep scaling curve and embed it in the report")
	flag.StringVar(&o.switching, "switching", "vct", "chaos campaign engine: vct or wormhole")
	flag.IntVar(&o.jobs, "j", 0, "parallel sweep workers (0: all CPUs)")
	flag.Uint64Var(&o.seed, "seed", 1, "seed for topologies and simulations")
	flag.StringVar(&o.cacheDir, "cache", "", "cache directory for the replay check (default: a fresh temp dir)")
	flag.StringVar(&o.out, "o", "BENCH_sweeps.json", "benchmark report output path")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "dsnbench:", err)
		os.Exit(1)
	}
}

// grid parameterizes one benchmark workload.
type grid struct {
	name      string
	cfg       dsnet.SimConfig
	latRates  []float64
	faultN    int
	fracs     []float64
	trials    int
	collSizes []int
	collReps  int
	targets   []string
	chaosN    int
	scenarios int
	mpN       int
	mpRate    float64
	mpFrac    float64
}

func gridFor(smoke bool, seed uint64) grid {
	cfg := dsnet.DefaultSimConfig()
	cfg.Seed = seed
	if smoke {
		cfg.WarmupCycles = 2000
		cfg.MeasureCycles = 4000
		cfg.DrainCycles = 8000
		return grid{
			name:     "smoke",
			cfg:      cfg,
			latRates: []float64{0.02, 0.06, 0.10},
			faultN:   32, fracs: []float64{0.05}, trials: 4,
			collSizes: []int{64}, collReps: 2,
			targets: []string{"torus"}, chaosN: 36, scenarios: 2,
			mpN: 16, mpRate: 0.05, mpFrac: 0.05,
		}
	}
	cfg.WarmupCycles = 5000
	cfg.MeasureCycles = 10000
	cfg.DrainCycles = 20000
	return grid{
		name:     "standard",
		cfg:      cfg,
		latRates: []float64{0.02, 0.04, 0.06, 0.08, 0.10, 0.12},
		faultN:   64, fracs: []float64{0.02, 0.05, 0.10}, trials: 10,
		collSizes: []int{64}, collReps: 3,
		targets: []string{"torus", "dsn"}, chaosN: 36, scenarios: 5,
		mpN: 32, mpRate: 0.05, mpFrac: 0.05,
	}
}

// bundle is everything one grid pass produces; passes are compared for
// byte identity through its canonical JSON encoding.
type bundle struct {
	Latency    dsnet.LatencyCurve    `json:"latency"`
	Faults     []dsnet.FaultRow      `json:"faults"`
	Collective []dsnet.CollectiveRow `json:"collective"`
	Chaos      []dsnet.ChaosRow      `json:"chaos"`
	Multipath  []dsnet.MultipathRow  `json:"multipath"`
	Diversity  []dsnet.DiversityRow  `json:"diversity"`
}

// runGrid executes the whole grid on one runner.
func runGrid(r *dsnet.SweepRunner, g grid, seed uint64, wormhole bool) (*bundle, error) {
	d, err := dsnet.NewDSN(64, dsnet.CeilLog2(64)-1)
	if err != nil {
		return nil, err
	}
	lat, err := dsnet.LatencySweepWith(r, g.cfg, d.Graph(), "DSN", "uniform", g.latRates)
	if err != nil {
		return nil, err
	}
	faults, err := dsnet.FaultSweepWith(r, g.faultN, g.fracs, g.trials, seed)
	if err != nil {
		return nil, err
	}
	coll, err := dsnet.CollectiveSweepWith(r, g.cfg, g.collSizes, "allreduce", "ring", 0, g.collReps, seed)
	if err != nil {
		return nil, err
	}
	chaosRows, err := dsnet.ChaosSweepWith(r, g.targets, g.chaosN, seed, g.scenarios, wormhole)
	if err != nil {
		return nil, err
	}
	mp, err := dsnet.MultipathSweepWith(r, g.cfg, g.mpN, g.mpRate, g.mpFrac, seed)
	if err != nil {
		return nil, err
	}
	div, err := dsnet.DiversitySweepWith(r, g.mpN, []int{2, 4}, seed)
	if err != nil {
		return nil, err
	}
	return &bundle{Latency: lat, Faults: faults, Collective: coll, Chaos: chaosRows,
		Multipath: mp, Diversity: div}, nil
}

func canonical(b *bundle) ([]byte, error) {
	return json.Marshal(b)
}

func run(o opts) error {
	if o.switching != "vct" && o.switching != "wormhole" {
		return fmt.Errorf("unknown switching mode %q", o.switching)
	}
	var scalingRows []dsnet.BenchScalingRow
	if o.scaling {
		fmt.Println("# scaling: serial-vs-parallel fault sweep")
		rows, err := scaling(o.jobs, o.seed)
		if err != nil {
			return err
		}
		scalingRows = rows
	}
	wormhole := o.switching == "wormhole"
	g := gridFor(o.smoke, o.seed)

	cacheDir := o.cacheDir
	if cacheDir == "" {
		tmp, err := os.MkdirTemp("", "dsnbench-cache-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		cacheDir = tmp
	}
	cache, err := dsnet.OpenSweepCache(cacheDir)
	if err != nil {
		return err
	}

	// Pass A: serial, uncached — the reference results and baseline wall
	// time every other pass is measured against.
	serial := &dsnet.SweepRunner{Jobs: 1, Bench: &dsnet.SweepBench{}}
	fmt.Printf("# dsnbench: %s grid, chaos engine %s\n", g.name, o.switching)
	fmt.Println("# pass A: serial, uncached")
	refBundle, err := runGrid(serial, g, o.seed, wormhole)
	if err != nil {
		return err
	}
	ref, err := canonical(refBundle)
	if err != nil {
		return err
	}

	// Pass B: parallel, populating the cache.
	par := &dsnet.SweepRunner{Jobs: o.jobs, Cache: cache, Bench: &dsnet.SweepBench{}}
	fmt.Printf("# pass B: parallel (-j %d), populating cache\n", par.JobCount())
	parBundle, err := runGrid(par, g, o.seed, wormhole)
	if err != nil {
		return err
	}
	parBytes, err := canonical(parBundle)
	if err != nil {
		return err
	}

	// Pass C: parallel again on the now-complete cache — must execute
	// zero cells and reproduce pass B byte-for-byte.
	replay := &dsnet.SweepRunner{Jobs: o.jobs, Cache: cache, Bench: &dsnet.SweepBench{}}
	fmt.Println("# pass C: parallel, fully cached replay")
	replayBundle, err := runGrid(replay, g, o.seed, wormhole)
	if err != nil {
		return err
	}
	replayBytes, err := canonical(replayBundle)
	if err != nil {
		return err
	}

	executed, cached := 0, 0
	for _, s := range replay.Bench.Sweeps() {
		executed += s.Executed
		cached += s.Cached
	}
	identical := string(ref) == string(parBytes) && string(parBytes) == string(replayBytes)

	report := dsnet.NewBenchReport(par.Bench, par.JobCount())
	report.Grid = g.name
	report.Switching = o.switching
	report.SerialWallMS = serial.Bench.TotalWallMS()
	if report.TotalWallMS > 0 {
		report.Speedup = report.SerialWallMS / report.TotalWallMS
	}
	report.Replay = &dsnet.BenchReplayCheck{Executed: executed, Cached: cached, Identical: identical}
	report.Scaling = scalingRows
	if err := report.WriteFile(o.out); err != nil {
		return err
	}

	fmt.Printf("# serial %.0f ms, parallel %.0f ms (-j %d, gomaxprocs %d): speedup %.2fx\n",
		report.SerialWallMS, report.TotalWallMS, report.Jobs, report.GoMaxProcs, report.Speedup)
	fmt.Printf("# replay: %d executed, %d cached, identical=%v\n", executed, cached, identical)
	if report.CacheErrors > 0 {
		fmt.Printf("# cache: %d write failures (results unaffected; affected cells re-run next time)\n", report.CacheErrors)
	}
	fmt.Printf("# wrote %s\n", o.out)

	if !identical {
		return fmt.Errorf("parallel/cached results are not byte-identical to the serial baseline")
	}
	if executed != 0 {
		return fmt.Errorf("fully cached replay executed %d cells (want 0)", executed)
	}
	return nil
}
