// Command dsnviz renders SVG illustrations: topology chord diagrams,
// machine-room floorplans with cables, and the paper's figure curves.
//
// Usage:
//
//	dsnviz -what topo -topo dsn -n 64 -out dsn64.svg
//	dsnviz -what floor -topo random -n 256 -out floor.svg
//	dsnviz -what fig7 -out fig7.svg
//	dsnviz -what fig10a -quick -out fig10a.svg
package main

import (
	"flag"
	"fmt"
	"os"

	"dsnet"
	"dsnet/internal/viz"
)

func main() {
	var (
		what = flag.String("what", "topo", "what to draw: topo, floor, fig7, fig8, fig9, fig10a, fig10b, fig10c, balance")
		topo = flag.String("topo", "dsn", "topology for topo/floor: dsn, dsn-e, bidsn, torus, random")
		n    = flag.Int("n", 64, "switches for topo/floor")
		out  = flag.String("out", "", "output file (default stdout)")
		seed = flag.Uint64("seed", 1, "seed")
		size = flag.Int("size", 560, "image size in pixels")
		fast = flag.Bool("quick", false, "short simulation windows for fig10*")
	)
	flag.Parse()
	svg, err := render(*what, *topo, *n, *seed, *size, *fast)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsnviz:", err)
		os.Exit(1)
	}
	if *out == "" {
		fmt.Println(svg)
		return
	}
	if err := os.WriteFile(*out, []byte(svg), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "dsnviz:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", *out, len(svg))
}

func buildGraph(topo string, n int, seed uint64) (*dsnet.Graph, error) {
	switch topo {
	case "dsn":
		d, err := dsnet.NewDSN(n, dsnet.CeilLog2(n)-1)
		if err != nil {
			return nil, err
		}
		return d.Graph(), nil
	case "dsn-e":
		d, err := dsnet.NewDSNE(n)
		if err != nil {
			return nil, err
		}
		return d.Graph(), nil
	case "bidsn":
		b, err := dsnet.NewBidirectionalDSN(n)
		if err != nil {
			return nil, err
		}
		return b.Graph(), nil
	case "torus":
		t, err := dsnet.NewTorus2DFor(n)
		if err != nil {
			return nil, err
		}
		return t.Graph(), nil
	case "random":
		return dsnet.NewDLNRandom(n, 2, 2, seed)
	default:
		return nil, fmt.Errorf("unknown topology %q", topo)
	}
}

func render(what, topo string, n int, seed uint64, size int, fast bool) (string, error) {
	switch what {
	case "topo":
		g, err := buildGraph(topo, n, seed)
		if err != nil {
			return "", err
		}
		return viz.RingSVG(g, size), nil
	case "floor":
		g, err := buildGraph(topo, n, seed)
		if err != nil {
			return "", err
		}
		l, err := dsnet.NewLayout(n, dsnet.DefaultLayoutConfig())
		if err != nil {
			return "", err
		}
		return viz.FloorplanSVG(l, g, size)
	case "fig7", "fig8":
		rows, err := dsnet.PathSweep([]int{5, 6, 7, 8, 9, 10, 11}, []uint64{seed})
		if err != nil {
			return "", err
		}
		metric := "diameter (hops)"
		pick := func(r dsnet.PathRow, name string) float64 { return r.Diameter[name] }
		if what == "fig8" {
			metric = "average shortest path (hops)"
			pick = func(r dsnet.PathRow, name string) float64 { return r.ASPL[name] }
		}
		var series []viz.Series
		for _, name := range dsnet.ComparisonNames {
			s := viz.Series{Name: name}
			for _, r := range rows {
				s.X = append(s.X, float64(r.LogN))
				s.Y = append(s.Y, pick(r, name))
			}
			series = append(series, s)
		}
		return viz.CurvesSVG(metric+" vs network size", "log2 N", metric, series, size, size*3/4), nil
	case "fig9":
		rows, err := dsnet.CableSweep([]int{5, 6, 7, 8, 9, 10, 11}, []uint64{seed}, dsnet.DefaultLayoutConfig())
		if err != nil {
			return "", err
		}
		var series []viz.Series
		for _, name := range dsnet.ComparisonNames {
			s := viz.Series{Name: name}
			for _, r := range rows {
				s.X = append(s.X, float64(r.LogN))
				s.Y = append(s.Y, r.Average[name])
			}
			series = append(series, s)
		}
		return viz.CurvesSVG("average cable length vs network size", "log2 N", "metres", series, size, size*3/4), nil
	case "balance":
		cfg := dsnet.DefaultSimConfig()
		cfg.Seed = seed
		if fast {
			cfg.WarmupCycles = 3000
			cfg.MeasureCycles = 6000
			cfg.DrainCycles = 8000
		}
		res, err := dsnet.BalanceComparison(cfg, 64, 0.01)
		if err != nil {
			return "", err
		}
		var bars []viz.Bar
		for _, r := range res {
			bars = append(bars, viz.Bar{Label: r.Scheme + " max/avg", Value: r.MaxAvg})
		}
		return viz.BarsSVG("channel load concentration (lower is more balanced)", "x", bars, size), nil
	case "fig10a", "fig10b", "fig10c":
		pattern := map[string]string{"fig10a": "uniform", "fig10b": "bit-reversal", "fig10c": "neighboring"}[what]
		cfg := dsnet.DefaultSimConfig()
		cfg.Seed = seed
		if fast {
			cfg.WarmupCycles = 3000
			cfg.MeasureCycles = 6000
			cfg.DrainCycles = 8000
		}
		curves, err := dsnet.Fig10Curves(cfg, pattern, []float64{0.01, 0.02, 0.04, 0.06, 0.08, 0.10, 0.12}, seed)
		if err != nil {
			return "", err
		}
		var series []viz.Series
		for _, c := range curves {
			s := viz.Series{Name: c.Topology}
			for _, p := range c.Points {
				if p.Saturated {
					continue
				}
				s.X = append(s.X, p.AcceptedGbps)
				s.Y = append(s.Y, p.AvgLatencyNS)
			}
			series = append(series, s)
		}
		return viz.CurvesSVG("latency vs accepted traffic ("+pattern+")",
			"accepted [Gbit/s/host]", "latency [ns]", series, size, size*3/4), nil
	default:
		return "", fmt.Errorf("unknown -what %q", what)
	}
}
