package main

import (
	"strings"
	"testing"
)

func TestRenderTopoAndFloor(t *testing.T) {
	for _, topo := range []string{"dsn", "dsn-e", "bidsn", "torus", "random"} {
		n := 64
		if topo == "dsn-e" {
			n = 60
		}
		svg, err := render("topo", topo, n, 1, 300, true)
		if err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
		if !strings.HasPrefix(svg, "<svg") {
			t.Fatalf("%s: not an SVG", topo)
		}
	}
	svg, err := render("floor", "dsn", 128, 1, 300, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "rect") {
		t.Fatal("floorplan missing cabinets")
	}
}

func TestRenderFigures(t *testing.T) {
	for _, what := range []string{"fig7", "fig8", "fig9"} {
		svg, err := render(what, "", 0, 1, 320, true)
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		if !strings.Contains(svg, "polyline") {
			t.Fatalf("%s: no series drawn", what)
		}
	}
}

func TestRenderRejectsUnknown(t *testing.T) {
	if _, err := render("bogus", "dsn", 64, 1, 300, true); err == nil {
		t.Fatal("unknown -what accepted")
	}
	if _, err := render("topo", "bogus", 64, 1, 300, true); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestRenderBalance(t *testing.T) {
	svg, err := render("balance", "", 0, 1, 400, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "max/avg") {
		t.Fatal("balance bars missing")
	}
}
