// Command dsnserve runs the sweep service daemon: an HTTP+JSON front
// end over the parallel sweep harness that executes sweep, chaos and
// certification requests with a bounded job queue, load shedding
// (429 + Retry-After), per-request deadlines, singleflight dedup of
// identical in-flight requests over the shared content-addressed
// cache, streaming NDJSON progress, and graceful drain on SIGTERM.
//
// Endpoints:
//
//	POST /v1/sweep    run one sweep family (body selects family/grid)
//	POST /v1/chaos    chaos campaign sweep (family forced to "chaos")
//	POST /v1/certify  static certification of the standard combos
//	GET  /healthz     liveness (always 200 while the process serves)
//	GET  /readyz      readiness (503 once draining)
//	GET  /v1/stats    counters snapshot (accepted/deduped/shed/...)
//
// Usage:
//
//	dsnserve                         # listen on :8437, cache in .dsncache
//	dsnserve -addr 127.0.0.1:0       # ephemeral port (printed on stdout)
//	dsnserve -j 8 -concurrent 2 -queue 32
//	dsnserve -nocache -timeout 30s -drain 2m
//
// On SIGTERM or SIGINT the daemon stops admitting work, finishes the
// jobs it accepted (up to -drain), then exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dsnet/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8437", "listen address (host:port; port 0 picks one)")
		jobs       = flag.Int("j", 0, "harness workers per executing job (0: all CPUs)")
		concurrent = flag.Int("concurrent", 1, "jobs executing simultaneously")
		queue      = flag.Int("queue", 16, "queued jobs admitted beyond the executing ones")
		cacheDir   = flag.String("cache", "", "content-addressed cell cache directory (default .dsncache)")
		nocache    = flag.Bool("nocache", false, "disable the cell cache")
		timeout    = flag.Duration("timeout", 2*time.Minute, "default per-request deadline")
		maxTimeout = flag.Duration("max-timeout", 15*time.Minute, "ceiling on client-requested deadlines")
		drain      = flag.Duration("drain", 5*time.Minute, "shutdown drain deadline before in-flight jobs are cancelled")
	)
	flag.Parse()
	if err := run(*addr, serve.Config{
		Jobs: *jobs, Concurrency: *concurrent, QueueDepth: *queue,
		CacheDir: *cacheDir, NoCache: *nocache,
		DefaultTimeout: *timeout, MaxTimeout: *maxTimeout,
	}, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "dsnserve:", err)
		os.Exit(1)
	}
}

func run(addr string, cfg serve.Config, drain time.Duration) error {
	// The server's base context is the process context: cancelling it
	// (only after the drain deadline below) cancels every in-flight job.
	baseCtx, baseCancel := context.WithCancel(context.Background())
	defer baseCancel()
	s, err := serve.NewCtx(baseCtx, cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: s}

	// The resolved address goes to stdout (and nothing else does), so
	// scripts can `addr=$(dsnserve -addr :0 &)`-style capture it.
	fmt.Println(ln.Addr())
	if cache := s.CacheDir(); cache != "" {
		fmt.Fprintln(os.Stderr, "dsnserve: cell cache at", cache)
	}
	fmt.Fprintln(os.Stderr, "dsnserve: serving on", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "dsnserve: %s: draining (deadline %s)\n", sig, drain)
	case err := <-serveErr:
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "dsnserve: drain deadline hit, in-flight jobs cancelled")
	} else {
		fmt.Fprintln(os.Stderr, "dsnserve: drained cleanly")
	}
	// Connections are already terminal-evented; close the listener and
	// any stragglers.
	httpCtx, httpCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer httpCancel()
	if err := httpSrv.Shutdown(httpCtx); err != nil {
		httpSrv.Close()
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
